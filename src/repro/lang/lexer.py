"""Hand-written lexer for the mini-Fortran language.

The language is line-oriented: statements end at a newline (or ``;``).
Comments run from ``!`` (or a leading ``c `` in column 1, Fortran-style)
to end of line.  Keywords and identifiers are case-insensitive and are
normalized to lower case.
"""

from __future__ import annotations

from typing import List

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, LOGICAL_WORDS, OPERATORS, TokKind, Token


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, producing a NEWLINE-separated stream ending in EOF.

    Consecutive newlines collapse; logical operators may be written
    ``and``/``.and.`` etc. — both normalize to the bare word.
    """
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)

    def emit(kind: TokKind, value) -> None:
        tokens.append(Token(kind, value, line))

    while i < n:
        ch = source[i]

        # line continuation: '&' at end of line joins lines
        if ch == "&":
            j = i + 1
            while j < n and source[j] in " \t":
                j += 1
            if j < n and source[j] == "\n":
                line += 1
                i = j + 1
                continue
            raise LexError("stray '&' not at end of line", line)

        if ch == "\n" or ch == ";":
            if tokens and tokens[-1].kind is not TokKind.NEWLINE:
                emit(TokKind.NEWLINE, "\\n")
            if ch == "\n":
                line += 1
            i += 1
            continue

        if ch in " \t\r":
            i += 1
            continue

        if ch == "!":
            if i + 1 < n and source[i + 1] == "=":
                emit(TokKind.OP, "!=")
                i += 2
                continue
            while i < n and source[i] != "\n":
                i += 1
            continue

        if ch == "'" or ch == '"':
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise LexError("unterminated string literal", line)
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            emit(TokKind.STRING, source[i + 1 : j])
            i = j + 1
            continue

        if ch.isdigit() or (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # don't swallow '.and.' style tokens: require a digit next
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            text = source[i:j]
            if seen_dot:
                emit(TokKind.REAL, float(text))
            else:
                emit(TokKind.INT, int(text))
            i = j
            continue

        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j].lower()
            if word in KEYWORDS:
                emit(TokKind.KEYWORD, word)
            elif word in LOGICAL_WORDS:
                emit(TokKind.OP, word)
            else:
                emit(TokKind.NAME, word)
            i = j
            continue

        if ch == ".":
            # .and. / .or. / .not. / .le. style Fortran operators
            for word, op in (
                ("and", "and"),
                ("or", "or"),
                ("not", "not"),
                ("le", "<="),
                ("lt", "<"),
                ("ge", ">="),
                ("gt", ">"),
                ("eq", "=="),
                ("ne", "!="),
            ):
                marker = f".{word}."
                if source[i : i + len(marker)].lower() == marker:
                    emit(TokKind.OP, op)
                    i += len(marker)
                    break
            else:
                raise LexError(f"unexpected character {ch!r}", line)
            continue

        if ch == "(":
            emit(TokKind.LPAREN, "(")
            i += 1
            continue
        if ch == ")":
            emit(TokKind.RPAREN, ")")
            i += 1
            continue
        if ch == ",":
            emit(TokKind.COMMA, ",")
            i += 1
            continue

        for op in OPERATORS:
            if source.startswith(op, i):
                value = "!=" if op == "/=" else op
                emit(TokKind.OP, value)
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)

    if tokens and tokens[-1].kind is not TokKind.NEWLINE:
        emit(TokKind.NEWLINE, "\\n")
    emit(TokKind.EOF, "")
    return tokens
