"""Recursive-descent parser for the mini-Fortran language.

``parse_program`` is the single entry point: it lexes, parses every
program unit, runs the semantic checks (declaration/rank/call/recursion)
and assigns statement ids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.lang.astnodes import (
    ASSUMED,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    DoLoop,
    Expr,
    If,
    INTRINSICS,
    Intrinsic,
    Num,
    PrintStmt,
    Program,
    ReadStmt,
    Return,
    Stmt,
    Subroutine,
    UnOp,
    VarRef,
    assign_nids,
    walk_exprs,
    walk_stmts,
    stmt_exprs,
)
from repro.lang.errors import ParseError, SemanticError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind, Token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def expect_kw(self, word: str) -> Token:
        if not self.cur.is_kw(word):
            raise ParseError(f"expected {word!r}, found {self.cur}", self.cur.line)
        return self.advance()

    def expect(self, kind: TokKind) -> Token:
        if self.cur.kind is not kind:
            raise ParseError(
                f"expected {kind.value}, found {self.cur}", self.cur.line
            )
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not self.cur.is_op(op):
            raise ParseError(f"expected {op!r}, found {self.cur}", self.cur.line)
        return self.advance()

    def eat_newlines(self) -> None:
        while self.cur.kind is TokKind.NEWLINE:
            self.advance()

    def end_stmt(self) -> None:
        if self.cur.kind is TokKind.EOF:
            return
        self.expect(TokKind.NEWLINE)
        self.eat_newlines()

    # -- units -----------------------------------------------------------
    def parse_program(self, default_name: str) -> Program:
        self.eat_newlines()
        units: Dict[str, Subroutine] = {}
        main: Optional[str] = None
        prog_name = default_name
        while self.cur.kind is not TokKind.EOF:
            unit = self.parse_unit()
            if unit.name in units:
                raise SemanticError(f"duplicate unit {unit.name!r}")
            units[unit.name] = unit
            if unit.is_main:
                if main is not None:
                    raise SemanticError("multiple program units")
                main = unit.name
                prog_name = unit.name
            self.eat_newlines()
        if main is None:
            raise SemanticError("no 'program' unit found")
        return Program(prog_name, units, main)

    def parse_unit(self) -> Subroutine:
        line = self.cur.line
        if self.cur.is_kw("program"):
            self.advance()
            name = self.expect(TokKind.NAME).value
            params: List[str] = []
            is_main = True
        elif self.cur.is_kw("subroutine"):
            self.advance()
            name = self.expect(TokKind.NAME).value
            params = []
            self.expect(TokKind.LPAREN)
            if self.cur.kind is not TokKind.RPAREN:
                params.append(self.expect(TokKind.NAME).value)
                while self.cur.kind is TokKind.COMMA:
                    self.advance()
                    params.append(self.expect(TokKind.NAME).value)
            self.expect(TokKind.RPAREN)
            is_main = False
        else:
            raise ParseError(
                f"expected 'program' or 'subroutine', found {self.cur}", line
            )
        self.end_stmt()

        decls: Dict[str, Decl] = {}
        while self.cur.is_kw("integer") or self.cur.is_kw("real"):
            for d in self.parse_decl_line():
                if d.name in decls:
                    raise SemanticError(f"duplicate declaration of {d.name!r}")
                decls[d.name] = d
        body = self.parse_stmts(terminators=("end",))
        self.expect_kw("end")
        if self.cur.kind is TokKind.NEWLINE:
            self.eat_newlines()
        return Subroutine(name, params, decls, body, is_main=is_main)

    def parse_decl_line(self) -> List[Decl]:
        typ = self.advance().value  # 'integer' | 'real'
        out: List[Decl] = []
        while True:
            name = self.expect(TokKind.NAME).value
            dims: Optional[Tuple[Union[Expr, str], ...]] = None
            if self.cur.kind is TokKind.LPAREN:
                self.advance()
                extents: List[Union[Expr, str]] = [self.parse_dim()]
                while self.cur.kind is TokKind.COMMA:
                    self.advance()
                    extents.append(self.parse_dim())
                self.expect(TokKind.RPAREN)
                for e in extents[:-1]:
                    if e == ASSUMED:
                        raise SemanticError(
                            f"assumed size '*' only allowed in the last "
                            f"dimension of {name!r}"
                        )
                dims = tuple(extents)
            out.append(Decl(name, typ, dims))
            if self.cur.kind is not TokKind.COMMA:
                break
            self.advance()
        self.end_stmt()
        return out

    def parse_dim(self) -> Union[Expr, str]:
        if self.cur.is_op("*"):
            self.advance()
            return ASSUMED
        return self.parse_expr()

    # -- statements --------------------------------------------------------
    def parse_stmts(self, terminators: Tuple[str, ...]) -> List[Stmt]:
        stmts: List[Stmt] = []
        self.eat_newlines()
        while True:
            if self.cur.kind is TokKind.EOF:
                raise ParseError(
                    f"unexpected end of input, expected one of {terminators}",
                    self.cur.line,
                )
            if self.cur.kind is TokKind.KEYWORD and self.cur.value in terminators:
                return stmts
            stmts.append(self.parse_stmt())
            self.eat_newlines()

    def parse_stmt(self) -> Stmt:
        tok = self.cur
        if tok.is_kw("do"):
            return self.parse_do()
        if tok.is_kw("if"):
            return self.parse_if()
        if tok.is_kw("call"):
            return self.parse_call()
        if tok.is_kw("read"):
            return self.parse_read()
        if tok.is_kw("print"):
            return self.parse_print()
        if tok.is_kw("return"):
            self.advance()
            self.end_stmt()
            stmt = Return()
            stmt.line = tok.line
            return stmt
        if tok.kind is TokKind.NAME:
            return self.parse_assign()
        raise ParseError(f"unexpected token {tok}", tok.line)

    def parse_do(self) -> DoLoop:
        line = self.cur.line
        self.expect_kw("do")
        var = self.expect(TokKind.NAME).value
        self.expect_op("=")
        lo = self.parse_expr()
        self.expect(TokKind.COMMA)
        hi = self.parse_expr()
        step: Optional[Expr] = None
        if self.cur.kind is TokKind.COMMA:
            self.advance()
            step = self.parse_expr()
        self.end_stmt()
        body = self.parse_stmts(terminators=("enddo",))
        self.expect_kw("enddo")
        self.end_stmt()
        loop = DoLoop(var, lo, hi, step, body)
        loop.line = line
        return loop

    def parse_if(self) -> If:
        line = self.cur.line
        self.expect_kw("if")
        self.expect(TokKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokKind.RPAREN)
        self.expect_kw("then")
        self.end_stmt()
        then_body = self.parse_stmts(terminators=("else", "elseif", "endif"))
        else_body: List[Stmt] = []
        if self.cur.is_kw("elseif"):
            # parse the rest as a nested If inside else_body
            nested = self.parse_elseif()
            else_body = [nested]
        elif self.cur.is_kw("else"):
            self.advance()
            self.end_stmt()
            else_body = self.parse_stmts(terminators=("endif",))
            self.expect_kw("endif")
            self.end_stmt()
        else:
            self.expect_kw("endif")
            self.end_stmt()
        stmt = If(cond, then_body, else_body)
        stmt.line = line
        return stmt

    def parse_elseif(self) -> If:
        line = self.cur.line
        self.expect_kw("elseif")
        self.expect(TokKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokKind.RPAREN)
        self.expect_kw("then")
        self.end_stmt()
        then_body = self.parse_stmts(terminators=("else", "elseif", "endif"))
        else_body: List[Stmt] = []
        if self.cur.is_kw("elseif"):
            else_body = [self.parse_elseif()]
        elif self.cur.is_kw("else"):
            self.advance()
            self.end_stmt()
            else_body = self.parse_stmts(terminators=("endif",))
            self.expect_kw("endif")
            self.end_stmt()
        else:
            self.expect_kw("endif")
            self.end_stmt()
        stmt = If(cond, then_body, else_body)
        stmt.line = line
        return stmt

    def parse_call(self) -> Call:
        line = self.cur.line
        self.expect_kw("call")
        name = self.expect(TokKind.NAME).value
        args: List[Expr] = []
        self.expect(TokKind.LPAREN)
        if self.cur.kind is not TokKind.RPAREN:
            args.append(self.parse_expr())
            while self.cur.kind is TokKind.COMMA:
                self.advance()
                args.append(self.parse_expr())
        self.expect(TokKind.RPAREN)
        self.end_stmt()
        stmt = Call(name, args)
        stmt.line = line
        return stmt

    def parse_read(self) -> ReadStmt:
        line = self.cur.line
        self.expect_kw("read")
        names = [self.expect(TokKind.NAME).value]
        while self.cur.kind is TokKind.COMMA:
            self.advance()
            names.append(self.expect(TokKind.NAME).value)
        self.end_stmt()
        stmt = ReadStmt(names)
        stmt.line = line
        return stmt

    def parse_print(self) -> PrintStmt:
        line = self.cur.line
        self.expect_kw("print")
        args: List[Expr] = []
        if self.cur.kind is not TokKind.NEWLINE:
            args.append(self.parse_print_arg())
            while self.cur.kind is TokKind.COMMA:
                self.advance()
                args.append(self.parse_print_arg())
        self.end_stmt()
        stmt = PrintStmt(args)
        stmt.line = line
        return stmt

    def parse_print_arg(self) -> Expr:
        if self.cur.kind is TokKind.STRING:
            # strings only appear in print; model as a Num-free VarRef-ish
            tok = self.advance()
            return Num(0) if tok.value == "" else _StringArg(tok.value)
        return self.parse_expr()

    def parse_assign(self) -> Assign:
        line = self.cur.line
        target = self.parse_primary()
        if not isinstance(target, (VarRef, ArrayRef)):
            raise ParseError("invalid assignment target", line)
        if isinstance(target, ArrayRef) and target.name in INTRINSICS:
            raise ParseError(f"cannot assign to intrinsic {target.name!r}", line)
        self.expect_op("=")
        value = self.parse_expr()
        self.end_stmt()
        stmt = Assign(target, value)
        stmt.line = line
        return stmt

    # -- expressions ---------------------------------------------------
    # precedence (loosest to tightest): or, and, not, relational,
    # additive, multiplicative, unary-, power, primary

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.cur.is_op("or"):
            self.advance()
            left = BinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.cur.is_op("and"):
            self.advance()
            left = BinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.cur.is_op("not"):
            self.advance()
            return UnOp("not", self.parse_not())
        return self.parse_relational()

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        if self.cur.kind is TokKind.OP and self.cur.value in (
            "<",
            "<=",
            ">",
            ">=",
            "==",
            "!=",
        ):
            op = self.advance().value
            right = self.parse_additive()
            return BinOp(op, left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.cur.kind is TokKind.OP and self.cur.value in ("+", "-"):
            op = self.advance().value
            left = BinOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.cur.kind is TokKind.OP and self.cur.value in ("*", "/"):
            op = self.advance().value
            left = BinOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.cur.is_op("-"):
            self.advance()
            return UnOp("-", self.parse_unary())
        if self.cur.is_op("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> Expr:
        base = self.parse_primary()
        if self.cur.is_op("**"):
            self.advance()
            # right associative
            return BinOp("**", base, self.parse_unary())
        return base

    def parse_primary(self) -> Expr:
        tok = self.cur
        if tok.kind is TokKind.INT or tok.kind is TokKind.REAL:
            self.advance()
            return Num(tok.value)
        if tok.kind is TokKind.LPAREN:
            self.advance()
            e = self.parse_expr()
            self.expect(TokKind.RPAREN)
            return e
        if tok.kind is TokKind.NAME:
            name = self.advance().value
            if self.cur.kind is TokKind.LPAREN:
                self.advance()
                args: List[Expr] = []
                if self.cur.kind is not TokKind.RPAREN:
                    args.append(self.parse_expr())
                    while self.cur.kind is TokKind.COMMA:
                        self.advance()
                        args.append(self.parse_expr())
                self.expect(TokKind.RPAREN)
                if name in INTRINSICS:
                    return Intrinsic(name, tuple(args))
                return ArrayRef(name, tuple(args))
            return VarRef(name)
        raise ParseError(f"unexpected token {tok}", tok.line)


class _StringArg:
    """A print-only string literal; kept out of the Expr union on purpose."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return f"_StringArg({self.text!r})"

    def __eq__(self, other):
        return isinstance(other, _StringArg) and other.text == self.text

    def __hash__(self):
        return hash(("_StringArg", self.text))


# ----------------------------------------------------------------------
# semantic checks
# ----------------------------------------------------------------------

_IMPLICIT_INT_PREFIX = "ijklmn"


def _implicit_decl(name: str) -> Decl:
    typ = "integer" if name[0] in _IMPLICIT_INT_PREFIX else "real"
    return Decl(name, typ, None)


def check_semantics(program: Program) -> None:
    """Declaration, rank, call-signature and non-recursion checks.

    Undeclared *scalars* receive Fortran implicit typing (``i``–``n`` →
    integer, else real) and are added to the unit's declaration table.
    Undeclared or rank-mismatched *array* references are errors.
    """
    for unit in program.units.values():
        _check_unit(program, unit)
    _check_no_recursion(program)


def _check_unit(program: Program, unit: Subroutine) -> None:
    for p in unit.params:
        if p not in unit.decls:
            unit.decls[p] = _implicit_decl(p)

    def note_expr(e: Expr, line: int) -> None:
        for sub in walk_exprs(e):
            if isinstance(sub, VarRef):
                decl = unit.decls.get(sub.name)
                if decl is None:
                    unit.decls[sub.name] = _implicit_decl(sub.name)
                elif decl.is_array:
                    raise SemanticError(
                        f"array {sub.name!r} used without subscripts", line
                    )
            elif isinstance(sub, ArrayRef):
                decl = unit.decls.get(sub.name)
                if decl is None:
                    raise SemanticError(
                        f"undeclared array {sub.name!r}", line
                    )
                if not decl.is_array:
                    raise SemanticError(
                        f"scalar {sub.name!r} subscripted", line
                    )
                if decl.rank != len(sub.subscripts):
                    raise SemanticError(
                        f"array {sub.name!r} has rank {decl.rank}, "
                        f"referenced with {len(sub.subscripts)} subscripts",
                        line,
                    )

    for stmt in walk_stmts(unit.body):
        if isinstance(stmt, DoLoop):
            if stmt.var not in unit.decls:
                unit.decls[stmt.var] = Decl(stmt.var, "integer", None)
            elif unit.decls[stmt.var].is_array:
                raise SemanticError(
                    f"loop index {stmt.var!r} is an array", stmt.line
                )
        if isinstance(stmt, ReadStmt):
            for nm in stmt.names:
                if nm not in unit.decls:
                    unit.decls[nm] = _implicit_decl(nm)
                elif unit.decls[nm].is_array:
                    raise SemanticError(
                        f"read into array {nm!r} not supported", stmt.line
                    )
        if isinstance(stmt, Call):
            callee = program.units.get(stmt.name)
            if callee is None:
                raise SemanticError(f"call to unknown unit {stmt.name!r}", stmt.line)
            if callee.is_main:
                raise SemanticError(f"cannot call program unit {stmt.name!r}", stmt.line)
            if len(callee.params) != len(stmt.args):
                raise SemanticError(
                    f"{stmt.name!r} expects {len(callee.params)} args, "
                    f"got {len(stmt.args)}",
                    stmt.line,
                )
            # a bare VarRef argument may legally name a whole array
            for a in stmt.args:
                if isinstance(a, VarRef):
                    if a.name not in unit.decls:
                        unit.decls[a.name] = _implicit_decl(a.name)
                else:
                    note_expr(a, stmt.line)
            continue
        for e in stmt_exprs(stmt):
            if isinstance(e, _StringArg):
                continue
            note_expr(e, stmt.line)

    # declared dimension expressions may also reference scalars
    for decl in list(unit.decls.values()):
        if decl.dims:
            for d in decl.dims:
                if d != "*":
                    note_expr(d, 0)


def _check_no_recursion(program: Program) -> None:
    """Reject call-graph cycles (Fortran-77 non-recursive model)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in program.units}

    def visit(name: str, stack: List[str]) -> None:
        color[name] = GRAY
        unit = program.units[name]
        for stmt in walk_stmts(unit.body):
            if isinstance(stmt, Call):
                callee = stmt.name
                if color[callee] == GRAY:
                    cycle = " -> ".join(stack + [name, callee])
                    raise SemanticError(f"recursive call cycle: {cycle}")
                if color[callee] == WHITE:
                    visit(callee, stack + [name])
        color[name] = BLACK

    visit(program.main, [])
    for name in program.units:
        if color[name] == WHITE:
            visit(name, [])


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def parse_program(source: str, default_name: str = "main") -> Program:
    """Parse, semantically check and number a program."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program(default_name)
    check_semantics(program)
    assign_nids(program)
    return program
