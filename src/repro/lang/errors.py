"""Front-end error hierarchy."""

from __future__ import annotations


class LangError(Exception):
    """Base class for all front-end errors."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(LangError):
    """Raised on an unrecognized character sequence."""


class ParseError(LangError):
    """Raised on a syntax error."""


class SemanticError(LangError):
    """Raised on declaration/use inconsistencies, recursion, etc."""
