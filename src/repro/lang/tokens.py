"""Token definitions for the mini-Fortran lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokKind(enum.Enum):
    NAME = "name"
    INT = "int"
    REAL = "real"
    STRING = "string"
    OP = "op"          # + - * / ** relational, logical
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    NEWLINE = "newline"
    EOF = "eof"
    KEYWORD = "keyword"


KEYWORDS = frozenset(
    {
        "program",
        "subroutine",
        "end",
        "do",
        "enddo",
        "if",
        "then",
        "else",
        "elseif",
        "endif",
        "call",
        "read",
        "print",
        "integer",
        "real",
        "parameter",
        "return",
    }
)

# Multi-character operators first so the lexer can do longest-match.
OPERATORS = (
    "**",
    "<=",
    ">=",
    "==",
    "!=",
    "/=",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
)

LOGICAL_WORDS = frozenset({"and", "or", "not"})


@dataclass(frozen=True)
class Token:
    kind: TokKind
    value: Union[str, int, float]
    line: int

    def is_kw(self, word: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind is TokKind.OP and self.value == op

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.value!r}@{self.line}"
