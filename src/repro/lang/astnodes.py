"""AST node definitions.

Expressions are immutable value objects (frozen dataclasses) — two
structurally equal subscript expressions compare equal, which the region
builder relies on.  Statements are identity objects carrying a
program-unique ``nid`` (assigned by the parser / builder) plus the source
line, so analyses can key results by statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """Integer or real literal."""

    value: Union[int, float]


@dataclass(frozen=True)
class VarRef:
    """Scalar variable reference."""

    name: str


@dataclass(frozen=True)
class ArrayRef:
    """Array element reference ``name(sub1, sub2, …)``."""

    name: str
    subscripts: Tuple["Expr", ...]


@dataclass(frozen=True)
class BinOp:
    """Binary operation.

    ``op`` ∈ {``+ - * / **``, ``< <= > >= == !=``, ``and or``}.
    """

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnOp:
    """Unary ``-`` or ``not``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Intrinsic:
    """Intrinsic call: ``mod``, ``min``, ``max``, ``abs``."""

    name: str
    args: Tuple["Expr", ...]


Expr = Union[Num, VarRef, ArrayRef, BinOp, UnOp, Intrinsic]
LValue = Union[VarRef, ArrayRef]

RELOPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
BOOLOPS = frozenset({"and", "or"})
ARITHOPS = frozenset({"+", "-", "*", "/", "**"})
INTRINSICS = frozenset({"mod", "min", "max", "abs"})


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


@dataclass(eq=False)
class Stmt:
    """Base statement: identity equality, unique ``nid``."""

    nid: int = field(default=-1, init=False)
    line: int = field(default=0, init=False)


@dataclass(eq=False)
class Assign(Stmt):
    target: LValue
    value: Expr


@dataclass(eq=False)
class DoLoop(Stmt):
    var: str
    lo: Expr
    hi: Expr
    step: Optional[Expr]
    body: List[Stmt]
    label: str = ""  # assigned by normalize: "<unit>:L<k>"


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt]


@dataclass(eq=False)
class Call(Stmt):
    name: str
    args: List[Expr]


@dataclass(eq=False)
class ReadStmt(Stmt):
    """``read x, y`` — run-time input into scalars (symbolic to analysis)."""

    names: List[str]


@dataclass(eq=False)
class PrintStmt(Stmt):
    args: List[Expr]


@dataclass(eq=False)
class Return(Stmt):
    pass


# ----------------------------------------------------------------------
# declarations / units / program
# ----------------------------------------------------------------------

ASSUMED = "*"  # assumed-size final dimension marker


@dataclass
class Decl:
    """A variable declaration.

    ``dims`` is ``None`` for scalars, otherwise a tuple of extent
    expressions; the last extent may be :data:`ASSUMED` for assumed-size
    formal arrays (``real x(*)``).
    """

    name: str
    typ: str  # "integer" | "real"
    dims: Optional[Tuple[Union[Expr, str], ...]] = None

    @property
    def is_array(self) -> bool:
        return self.dims is not None

    @property
    def rank(self) -> int:
        return len(self.dims) if self.dims else 0


@dataclass
class Subroutine:
    """A program unit; the main program is a parameterless unit with
    ``is_main=True``."""

    name: str
    params: List[str]
    decls: Dict[str, Decl]
    body: List[Stmt]
    is_main: bool = False

    def decl_of(self, name: str) -> Optional[Decl]:
        return self.decls.get(name)


@dataclass
class Program:
    """A whole program: ordered units, one of which is the main unit."""

    name: str
    units: "Dict[str, Subroutine]"
    main: str

    @property
    def main_unit(self) -> Subroutine:
        return self.units[self.main]


# ----------------------------------------------------------------------
# tree walking helpers
# ----------------------------------------------------------------------


def walk_stmts(stmts: List[Stmt]) -> Iterator[Stmt]:
    """Yield every statement, pre-order, descending into bodies."""
    for s in stmts:
        yield s
        if isinstance(s, DoLoop):
            yield from walk_stmts(s.body)
        elif isinstance(s, If):
            yield from walk_stmts(s.then_body)
            yield from walk_stmts(s.else_body)


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Yield every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, (ArrayRef, Intrinsic)):
        for a in (expr.subscripts if isinstance(expr, ArrayRef) else expr.args):
            yield from walk_exprs(a)


def stmt_exprs(stmt: Stmt) -> Iterator[Expr]:
    """Top-level expressions appearing directly in *stmt* (not its body)."""
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, DoLoop):
        yield stmt.lo
        yield stmt.hi
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, Call):
        yield from stmt.args
    elif isinstance(stmt, PrintStmt):
        yield from stmt.args


def expr_variables(expr: Expr) -> frozenset:
    """All scalar/array names appearing in *expr*."""
    names = set()
    for e in walk_exprs(expr):
        if isinstance(e, VarRef):
            names.add(e.name)
        elif isinstance(e, ArrayRef):
            names.add(e.name)
    return frozenset(names)


def loops_of(unit: Subroutine) -> List[DoLoop]:
    """All DO loops in *unit*, outermost first (pre-order)."""
    return [s for s in walk_stmts(unit.body) if isinstance(s, DoLoop)]


def assign_nids(program: Program, relabel: bool = True) -> None:
    """Assign program-unique ``nid`` to every statement and loop labels.

    Idempotent: re-running renumbers consistently in pre-order.  Pass
    ``relabel=False`` to keep existing loop labels (used by the
    two-version transform, whose cloned loops carry ``_par``/``_seq``
    suffixes).
    """
    counter = 0
    for unit in program.units.values():
        loop_counter = 0
        for s in walk_stmts(unit.body):
            s.nid = counter
            counter += 1
            if isinstance(s, DoLoop):
                loop_counter += 1
                if relabel or not s.label:
                    s.label = f"{unit.name}:L{loop_counter}"
