"""repro — Predicated Array Data-Flow Analysis for Automatic Parallelization.

A from-scratch reproduction of Moon & Hall, *Evaluation of Predicated Array
Data-Flow Analysis for Automatic Parallelization* (PPoPP 1999).

The package is organized bottom-up:

``repro.symbolic``
    Exact affine-expression algebra over named variables.
``repro.linalg``
    Integer linear-inequality systems, Fourier–Motzkin elimination,
    feasibility and implication tests.
``repro.predicates``
    The predicate language (boolean formulas over affine atoms and opaque
    run-time-evaluable atoms), simplification and evaluation.
``repro.lang``
    A mini-Fortran front end: lexer, parser, AST, pretty printer and a
    programmatic builder DSL.
``repro.ir``
    Hierarchical program representation: region graph, call graph, symbol
    tables and loop normalization.
``repro.regions``
    Array region representation (systems of linear inequalities over
    subscript variables) and the region operations (union, intersection,
    subtraction, projection, interprocedural reshape).
``repro.arraydf``
    The array data-flow analyses: the non-predicated SUIF-style baseline
    and the paper's predicated analysis with predicate embedding and
    extraction.
``repro.partests``
    Dependence and privatization tests, run-time test derivation and the
    parallelization driver.
``repro.codegen``
    Two-version loop generation and parallel-loop annotation.
``repro.runtime``
    An interpreter for the mini language plus the ELPD dynamic
    parallelization oracle.
``repro.machine``
    A deterministic multiprocessor cost simulator used for speedup
    experiments.
``repro.suites``
    Thirty synthetic benchmark programs calibrated to the paper's
    benchmark suites (Specfp95, NAS, Perfect + 1 extra).
``repro.experiments``
    One harness per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnalysisOptions",
    "analyze_program",
    "parse_program",
    "format_report",
    "run_program",
    "run_oracle",
]

_LAZY = {
    "AnalysisOptions": ("repro.arraydf.options", "AnalysisOptions"),
    "analyze_program": ("repro.partests.driver", "analyze_program"),
    "parse_program": ("repro.lang.parser", "parse_program"),
    "format_report": ("repro.codegen.report", "format_report"),
    "run_program": ("repro.runtime.interp", "run_program"),
    "run_oracle": ("repro.runtime.elpd", "run_oracle"),
}


def __getattr__(name):
    """Lazy top-level convenience re-exports (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
