"""AST expression → analysis-domain translators.

``to_affine`` maps integer-valued expressions into the exact affine
algebra (returning ``None`` for anything non-affine — products of
variables, real arithmetic, array elements, intrinsics).

``cond_to_predicate`` maps a boolean condition into the predicate
language: affine comparisons become :class:`LinAtom`, ``mod(e, k) == 0``
becomes :class:`DivAtom`, everything else becomes an :class:`OpaqueAtom`
keyed by its source text — exactly the paper's "run-time evaluable
predicates consisting of arbitrary program statements".
"""

from __future__ import annotations

from typing import Optional

from repro.lang.astnodes import (
    ArrayRef,
    BinOp,
    Expr,
    Intrinsic,
    Num,
    RELOPS,
    UnOp,
    VarRef,
    expr_variables,
)
from repro.lang.prettyprint import expr_str
from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.formula import (
    Predicate,
    p_and,
    p_atom,
    p_not,
    p_or,
)
from repro.symbolic.affine import AffineExpr


def to_affine(expr: Expr) -> Optional[AffineExpr]:
    """Translate an integer expression to affine form, or ``None``."""
    if isinstance(expr, Num):
        if isinstance(expr.value, int):
            return AffineExpr.const(expr.value)
        return None  # real literal: not part of the affine index domain
    if isinstance(expr, VarRef):
        return AffineExpr.var(expr.name)
    if isinstance(expr, UnOp):
        if expr.op == "-":
            inner = to_affine(expr.operand)
            return -inner if inner is not None else None
        return None
    if isinstance(expr, BinOp):
        if expr.op == "+" or expr.op == "-":
            left = to_affine(expr.left)
            right = to_affine(expr.right)
            if left is None or right is None:
                return None
            return left + right if expr.op == "+" else left - right
        if expr.op == "*":
            left = to_affine(expr.left)
            right = to_affine(expr.right)
            if left is None or right is None:
                return None
            if left.is_constant():
                return right * left.constant
            if right.is_constant():
                return left * right.constant
            return None  # product of variables
        if expr.op == "/":
            # Fortran integer division truncates; only exact constant
            # division is affine.
            left = to_affine(expr.left)
            right = to_affine(expr.right)
            if left is None or right is None or not right.is_constant():
                return None
            d = right.constant
            if d == 0:
                return None
            q = left / d
            return q if q.is_integral() else None
        if expr.op == "**":
            left = to_affine(expr.left)
            right = to_affine(expr.right)
            if (
                left is not None
                and right is not None
                and left.is_constant()
                and right.is_constant()
                and right.constant.denominator == 1
                and right.constant >= 0
            ):
                return AffineExpr.const(
                    left.constant ** int(right.constant)
                )
            return None
        return None
    return None  # ArrayRef, Intrinsic


def _mod_divisibility(expr: BinOp) -> Optional[Predicate]:
    """Recognize ``mod(e, k) == 0`` / ``mod(e, k) != 0`` patterns."""
    if expr.op not in ("==", "!="):
        return None
    for mod_side, zero_side in ((expr.left, expr.right), (expr.right, expr.left)):
        if (
            isinstance(mod_side, Intrinsic)
            and mod_side.name == "mod"
            and len(mod_side.args) == 2
            and isinstance(zero_side, Num)
            and zero_side.value == 0
        ):
            base = to_affine(mod_side.args[0])
            k = to_affine(mod_side.args[1])
            if (
                base is not None
                and base.is_integral()
                and k is not None
                and k.is_constant()
                and k.constant.denominator == 1
                and int(k.constant) > 1
            ):
                atom = p_atom(DivAtom(base, int(k.constant)))
                return atom if expr.op == "==" else p_not(atom)
    return None


def _opaque(expr: Expr) -> Predicate:
    """Fallback: an uninterpreted run-time-evaluable atom."""
    return p_atom(OpaqueAtom(expr_str(expr), tuple(expr_variables(expr))))


def cond_to_predicate(expr: Expr) -> Predicate:
    """Translate a boolean condition into the predicate language."""
    if isinstance(expr, BinOp):
        if expr.op == "and":
            return p_and(cond_to_predicate(expr.left), cond_to_predicate(expr.right))
        if expr.op == "or":
            return p_or(cond_to_predicate(expr.left), cond_to_predicate(expr.right))
        if expr.op in RELOPS:
            div = _mod_divisibility(expr)
            if div is not None:
                return div
            left = to_affine(expr.left)
            right = to_affine(expr.right)
            if left is not None and right is not None:
                ctor = {
                    "<": LinAtom.lt,
                    "<=": LinAtom.le,
                    ">": LinAtom.gt,
                    ">=": LinAtom.ge,
                    "==": LinAtom.eq,
                }.get(expr.op)
                if ctor is not None:
                    return p_atom(ctor(left, right))
                # '!=' : ¬(==), which splits into two strict sides
                return p_not(p_atom(LinAtom.eq(left, right)))
            return _opaque(expr)
    if isinstance(expr, UnOp) and expr.op == "not":
        return p_not(cond_to_predicate(expr.operand))
    return _opaque(expr)


def scalars_read(expr: Expr) -> frozenset:
    """Names of all variables (scalar or array) consulted by *expr*."""
    return expr_variables(expr)


def reads_arrays(expr: Expr) -> bool:
    """Does *expr* reference any array element?"""
    from repro.lang.astnodes import walk_exprs

    return any(isinstance(e, ArrayRef) for e in walk_exprs(expr))
