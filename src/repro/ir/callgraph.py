"""Interprocedural call graph.

The front end guarantees the call graph is acyclic (Fortran-77
non-recursive model), so a reverse topological order exists and drives the
bottom-up interprocedural summary computation.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.lang.astnodes import Call, Program, walk_stmts


class CallGraph:
    """Call graph over the units of one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.edges: Dict[str, Set[str]] = {name: set() for name in program.units}
        self.call_sites: Dict[str, List[Call]] = {name: [] for name in program.units}
        for name, unit in program.units.items():
            for stmt in walk_stmts(unit.body):
                if isinstance(stmt, Call):
                    self.edges[name].add(stmt.name)
                    self.call_sites[name].append(stmt)

    def callees(self, name: str) -> Set[str]:
        return self.edges[name]

    def callers(self, name: str) -> Set[str]:
        return {u for u, outs in self.edges.items() if name in outs}

    def bottom_up_order(self) -> List[str]:
        """Units ordered so every callee precedes its callers."""
        order: List[str] = []
        visited: Set[str] = set()

        def visit(u: str) -> None:
            if u in visited:
                return
            visited.add(u)
            for v in sorted(self.edges[u]):
                visit(v)
            order.append(u)

        for u in sorted(self.program.units):
            visit(u)
        return order

    def reachable_from_main(self) -> Set[str]:
        seen: Set[str] = set()
        stack = [self.program.main]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self.edges[u])
        return seen

    def edge_list(self) -> List[Tuple[str, str]]:
        return sorted((u, v) for u, outs in self.edges.items() for v in outs)

    def __repr__(self) -> str:
        return f"CallGraph({len(self.edges)} units, {len(self.edge_list())} edges)"
