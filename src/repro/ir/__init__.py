"""Hierarchical program representation.

The SUIF analysis operates on a *region graph*: a tree of program regions
(basic block, loop body, loop, procedure call, procedure body) overlaid on
the AST.  This package builds that tree, the interprocedural call graph,
per-unit symbol tables, loop metadata, and the AST→affine /
AST→predicate translators used by every analysis.
"""

from repro.ir.regiongraph import (
    CallRegion,
    IfRegion,
    LoopRegion,
    ProcRegion,
    Region,
    SeqRegion,
    StmtRegion,
    build_region_tree,
)
from repro.ir.callgraph import CallGraph
from repro.ir.symboltable import SymbolTable
from repro.ir.loopinfo import LoopInfo, collect_loop_info
from repro.ir.exprtools import to_affine, cond_to_predicate, scalars_read

__all__ = [
    "Region",
    "StmtRegion",
    "CallRegion",
    "IfRegion",
    "LoopRegion",
    "SeqRegion",
    "ProcRegion",
    "build_region_tree",
    "CallGraph",
    "SymbolTable",
    "LoopInfo",
    "collect_loop_info",
    "to_affine",
    "cond_to_predicate",
    "scalars_read",
]
