"""The region graph: SUIF's hierarchical program representation.

A *program region* is a basic block, a loop body, a loop, a procedure
call, or a procedure body (Section 3 of the paper).  We realize this as a
tree of :class:`Region` nodes over the AST:

* :class:`StmtRegion` — one simple statement (assign/read/print/return);
  maximal runs of these under a common parent form the basic blocks;
* :class:`CallRegion` — one call site;
* :class:`IfRegion` — a structured conditional with two child sequences;
* :class:`LoopRegion` — a DO loop whose single child is the loop-body
  sequence;
* :class:`SeqRegion` — an ordered sequence of sibling regions (a loop
  body or branch arm);
* :class:`ProcRegion` — a procedure body (the root for one unit).

Every region knows its parent, its enclosing loop nest and its unit name,
which the dependence tests and reporting rely on.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.lang.astnodes import (
    Assign,
    Call,
    DoLoop,
    If,
    PrintStmt,
    ReadStmt,
    Return,
    Stmt,
    Subroutine,
)


class Region:
    """Base region node."""

    __slots__ = ("parent", "unit_name", "rid")

    def __init__(self) -> None:
        self.parent: Optional[Region] = None
        self.unit_name: str = ""
        self.rid: int = -1

    # -- structure -------------------------------------------------------
    def children(self) -> Sequence["Region"]:
        return ()

    def walk(self) -> Iterator["Region"]:
        """Pre-order traversal of the region subtree."""
        yield self
        for c in self.children():
            yield from c.walk()

    # -- context ---------------------------------------------------------
    def enclosing_loops(self) -> List["LoopRegion"]:
        """Loop regions containing this region, outermost first."""
        loops: List[LoopRegion] = []
        node = self.parent
        while node is not None:
            if isinstance(node, LoopRegion):
                loops.append(node)
            node = node.parent
        loops.reverse()
        return loops

    def enclosing_proc(self) -> "ProcRegion":
        node: Optional[Region] = self
        while node is not None and not isinstance(node, ProcRegion):
            node = node.parent
        if node is None:
            raise ValueError("region is detached from a procedure")
        return node

    def loop_depth(self) -> int:
        return len(self.enclosing_loops())


class StmtRegion(Region):
    """A simple statement (assignment, read, print, return)."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: Stmt) -> None:
        super().__init__()
        self.stmt = stmt

    def __repr__(self) -> str:
        return f"StmtRegion(nid={self.stmt.nid})"


class CallRegion(Region):
    """A call site."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: Call) -> None:
        super().__init__()
        self.stmt = stmt

    @property
    def callee(self) -> str:
        return self.stmt.name

    def __repr__(self) -> str:
        return f"CallRegion({self.stmt.name}, nid={self.stmt.nid})"


class SeqRegion(Region):
    """An ordered sequence of sibling regions."""

    __slots__ = ("items",)

    def __init__(self, items: List[Region]) -> None:
        super().__init__()
        self.items = items

    def children(self) -> Sequence[Region]:
        return self.items

    def __repr__(self) -> str:
        return f"SeqRegion(len={len(self.items)})"


class IfRegion(Region):
    """A structured conditional."""

    __slots__ = ("stmt", "then_seq", "else_seq")

    def __init__(self, stmt: If, then_seq: SeqRegion, else_seq: SeqRegion) -> None:
        super().__init__()
        self.stmt = stmt
        self.then_seq = then_seq
        self.else_seq = else_seq

    def children(self) -> Sequence[Region]:
        return (self.then_seq, self.else_seq)

    def __repr__(self) -> str:
        return f"IfRegion(nid={self.stmt.nid})"


class LoopRegion(Region):
    """A DO loop; its only child is the loop-body sequence."""

    __slots__ = ("stmt", "body_seq")

    def __init__(self, stmt: DoLoop, body_seq: SeqRegion) -> None:
        super().__init__()
        self.stmt = stmt
        self.body_seq = body_seq

    def children(self) -> Sequence[Region]:
        return (self.body_seq,)

    @property
    def index_var(self) -> str:
        return self.stmt.var

    @property
    def label(self) -> str:
        return self.stmt.label

    def __repr__(self) -> str:
        return f"LoopRegion({self.stmt.label})"


class ProcRegion(Region):
    """A procedure body — the root region of one unit."""

    __slots__ = ("unit", "body_seq")

    def __init__(self, unit: Subroutine, body_seq: SeqRegion) -> None:
        super().__init__()
        self.unit = unit
        self.body_seq = body_seq

    def children(self) -> Sequence[Region]:
        return (self.body_seq,)

    def loops(self) -> List[LoopRegion]:
        """All loop regions in this procedure, pre-order (outermost first)."""
        return [r for r in self.walk() if isinstance(r, LoopRegion)]

    def __repr__(self) -> str:
        return f"ProcRegion({self.unit.name})"


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def _build_seq(stmts: List[Stmt], counter: List[int], unit_name: str) -> SeqRegion:
    items: List[Region] = []
    for s in stmts:
        items.append(_build_stmt(s, counter, unit_name))
    seq = SeqRegion(items)
    _stamp(seq, counter, unit_name)
    for item in items:
        item.parent = seq
    return seq


def _build_stmt(stmt: Stmt, counter: List[int], unit_name: str) -> Region:
    if isinstance(stmt, DoLoop):
        body = _build_seq(stmt.body, counter, unit_name)
        region: Region = LoopRegion(stmt, body)
        _stamp(region, counter, unit_name)
        body.parent = region
        return region
    if isinstance(stmt, If):
        then_seq = _build_seq(stmt.then_body, counter, unit_name)
        else_seq = _build_seq(stmt.else_body, counter, unit_name)
        region = IfRegion(stmt, then_seq, else_seq)
        _stamp(region, counter, unit_name)
        then_seq.parent = region
        else_seq.parent = region
        return region
    if isinstance(stmt, Call):
        region = CallRegion(stmt)
        _stamp(region, counter, unit_name)
        return region
    if isinstance(stmt, (Assign, ReadStmt, PrintStmt, Return)):
        region = StmtRegion(stmt)
        _stamp(region, counter, unit_name)
        return region
    raise TypeError(f"unknown statement {stmt!r}")


def _stamp(region: Region, counter: List[int], unit_name: str) -> None:
    region.rid = counter[0]
    counter[0] += 1
    region.unit_name = unit_name


def build_region_tree(unit: Subroutine) -> ProcRegion:
    """Build the region tree for one program unit."""
    counter = [0]
    body = _build_seq(unit.body, counter, unit.name)
    proc = ProcRegion(unit, body)
    _stamp(proc, counter, unit.name)
    body.parent = proc
    return proc


# ----------------------------------------------------------------------
# control-flow edges
# ----------------------------------------------------------------------


class FlowGraph:
    """Control-flow successor/predecessor edges over a region tree.

    The *atomic* regions of a procedure — statements, call sites, and
    the header nodes of loops and conditionals — become graph nodes,
    numbered in source (pre-)order after two synthetic nodes: ``ENTRY``
    (0) and ``EXIT`` (1).  Edge construction follows the structured
    control flow:

    * sequence items chain left to right;
    * an ``If`` header fans out to the first node of each arm (or
      through itself when an arm is empty) and the arms re-join at the
      successor;
    * a ``DoLoop`` header starts the body, the last body nodes run the
      back edge to the header, and the header is also the loop's exit
      (zero-trip or completed) — an empty body degenerates to a header
      self-loop;
    * ``Return`` jumps straight to ``EXIT``, so loops containing one
      have multiple exits and statements after it are unreachable
      (no predecessors).

    This is the graph the :mod:`repro.ir.dataflow` worklist engine
    iterates over; dedicated edge tests live in
    ``tests/ir/test_regiongraph_edges.py``.
    """

    ENTRY = 0
    EXIT = 1

    def __init__(self) -> None:
        self.nodes: List[Optional[Region]] = [None, None]  # ENTRY, EXIT
        self.succs: List[List[int]] = [[], []]
        self.preds: List[List[int]] = [[], []]
        self._index: dict = {}  # id(region) -> node index

    # -- construction ---------------------------------------------------
    def _add_node(self, region: Region) -> int:
        idx = len(self.nodes)
        self.nodes.append(region)
        self.succs.append([])
        self.preds.append([])
        self._index[id(region)] = idx
        return idx

    def _add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node_for(self, region: Region) -> int:
        """The node index of an atomic region (KeyError if structural)."""
        return self._index[id(region)]

    def is_reachable(self, idx: int) -> bool:
        """Entry, or has at least one predecessor."""
        return idx == self.ENTRY or bool(self.preds[idx])


def _wire_seq(graph: FlowGraph, seq: SeqRegion, frontier: List[int]) -> List[int]:
    """Wire one region sequence; returns the nodes that flow past it."""
    for item in seq.items:
        if isinstance(item, (StmtRegion, CallRegion)):
            node = graph._add_node(item)
            for src in frontier:
                graph._add_edge(src, node)
            if isinstance(item, StmtRegion) and isinstance(item.stmt, Return):
                graph._add_edge(node, FlowGraph.EXIT)
                frontier = []  # nothing flows past a return
            else:
                frontier = [node]
        elif isinstance(item, IfRegion):
            node = graph._add_node(item)
            for src in frontier:
                graph._add_edge(src, node)
            then_exits = _wire_seq(graph, item.then_seq, [node])
            else_exits = _wire_seq(graph, item.else_seq, [node])
            frontier = []
            for x in then_exits + else_exits:
                if x not in frontier:
                    frontier.append(x)
        elif isinstance(item, LoopRegion):
            node = graph._add_node(item)
            for src in frontier:
                graph._add_edge(src, node)
            for x in _wire_seq(graph, item.body_seq, [node]):
                graph._add_edge(x, node)  # back edge (self-loop if empty)
            frontier = [node]  # the header is also the loop exit
        else:  # pragma: no cover - seqs never nest directly
            raise TypeError(f"unexpected region in sequence: {item!r}")
    return frontier


def build_flow_graph(proc: ProcRegion) -> FlowGraph:
    """The control-flow graph of one procedure's region tree."""
    graph = FlowGraph()
    for x in _wire_seq(graph, proc.body_seq, [FlowGraph.ENTRY]):
        graph._add_edge(x, FlowGraph.EXIT)
    return graph
