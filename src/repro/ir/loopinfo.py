"""Per-loop metadata: normalized bounds, candidacy, scalar def/use sets.

A loop is a *candidate* for parallelization (the denominator of the
paper's Table statistics) when it has no I/O and no early return in its
body, and its bounds/step are loop-invariant.  Loops nested inside an
already-parallelized loop are excluded later by the driver, mirroring
"SUIF only exploits a single level of parallelism".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.exprtools import to_affine
from repro.ir.regiongraph import LoopRegion, ProcRegion
from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    Call,
    DoLoop,
    Expr,
    If,
    PrintStmt,
    ReadStmt,
    Return,
    VarRef,
    expr_variables,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr


@dataclass
class LoopInfo:
    """Analysis-facing facts about one DO loop."""

    loop: DoLoop
    region: LoopRegion
    lo_affine: Optional[AffineExpr]
    hi_affine: Optional[AffineExpr]
    step: Optional[int]  # None when non-constant
    has_io: bool
    has_return: bool
    has_calls: bool
    bounds_invariant: bool
    scalar_writes: Set[str] = field(default_factory=set)
    scalar_exposed_reads: Set[str] = field(default_factory=set)
    reductions: Set[str] = field(default_factory=set)

    @property
    def is_candidate(self) -> bool:
        """Eligible for the parallelization tests at all."""
        return (
            not self.has_io
            and not self.has_return
            and self.bounds_invariant
            and self.step is not None
        )

    @property
    def is_affine(self) -> bool:
        return self.lo_affine is not None and self.hi_affine is not None

    def iteration_space(self) -> LinearSystem:
        """Constraints binding the index variable to the iteration range.

        For a positive constant step: ``lo <= i <= hi``; negative steps
        flip the bounds.  Non-unit strides keep the interval hull (a
        sound superset of the strided set).  ``min``/``max`` intrinsic
        bounds contribute their exact conjunction of inequalities
        (``i <= min(a, b)`` ⇔ ``i <= a ∧ i <= b``); other non-affine
        bounds yield no constraint (still sound).
        """
        if self.step is None:
            return LinearSystem.universe()
        i = AffineExpr.var(self.loop.var)
        lo_expr, hi_expr = self.loop.lo, self.loop.hi
        if self.step < 0:
            lo_expr, hi_expr = hi_expr, lo_expr
        constraints = []
        constraints.extend(_lower_bound_constraints(i, lo_expr))
        constraints.extend(_upper_bound_constraints(i, hi_expr))
        return LinearSystem(constraints)

    @property
    def label(self) -> str:
        return self.loop.label


def _upper_bound_constraints(index: AffineExpr, bound: Expr) -> list:
    """``index <= bound`` as exact constraints where expressible.

    ``min(a, b)`` bounds conjoin both sides; affine bounds give one
    inequality; anything else gives none (sound superset).
    """
    from repro.lang.astnodes import Intrinsic

    if isinstance(bound, Intrinsic) and bound.name == "min":
        out = []
        for arg in bound.args:
            out.extend(_upper_bound_constraints(index, arg))
        return out
    affine = to_affine(bound)
    if affine is not None:
        return [Constraint.le(index, affine)]
    return []


def _lower_bound_constraints(index: AffineExpr, bound: Expr) -> list:
    """``index >= bound`` as exact constraints where expressible."""
    from repro.lang.astnodes import Intrinsic

    if isinstance(bound, Intrinsic) and bound.name == "max":
        out = []
        for arg in bound.args:
            out.extend(_lower_bound_constraints(index, arg))
        return out
    affine = to_affine(bound)
    if affine is not None:
        return [Constraint.ge(index, affine)]
    return []


def _expr_writes_none_of(stmts, names: Set[str]) -> bool:
    """True if no statement assigns/reads-into any of *names*."""
    for s in stmts:
        if isinstance(s, Assign) and isinstance(s.target, VarRef):
            if s.target.name in names:
                return False
        if isinstance(s, ReadStmt) and any(n in names for n in s.names):
            return False
        if isinstance(s, DoLoop) and s.var in names:
            return False
    return True


def _is_reduction(stmt: Assign) -> bool:
    """Recognize ``s = s + e`` / ``s = s - e`` / ``s = s * e`` and the
    commuted ``s = e + s`` / ``s = e * s`` scalar-reduction idiom."""
    if not isinstance(stmt.target, VarRef):
        return False
    name = stmt.target.name
    v = stmt.value
    from repro.lang.astnodes import BinOp

    if isinstance(v, BinOp) and v.op in ("+", "*", "-"):
        if isinstance(v.left, VarRef) and v.left.name == name:
            return name not in expr_variables(v.right)
        if v.op in ("+", "*") and isinstance(v.right, VarRef) and v.right.name == name:
            return name not in expr_variables(v.left)
    return False


def analyze_loop(region: LoopRegion) -> LoopInfo:
    """Compute :class:`LoopInfo` for one loop region."""
    loop = region.stmt
    body_stmts = list(walk_stmts(loop.body))

    has_io = any(isinstance(s, (ReadStmt, PrintStmt)) for s in body_stmts)
    has_return = any(isinstance(s, Return) for s in body_stmts)
    has_calls = any(isinstance(s, Call) for s in body_stmts)

    lo_affine = to_affine(loop.lo)
    hi_affine = to_affine(loop.hi)
    step: Optional[int] = 1
    if loop.step is not None:
        step_affine = to_affine(loop.step)
        if (
            step_affine is not None
            and step_affine.is_constant()
            and step_affine.constant.denominator == 1
            and step_affine.constant != 0
        ):
            step = int(step_affine.constant)
        else:
            step = None

    # bounds are invariant when no variable they mention is written in the
    # body (including inner loop indices and read statements)
    bound_vars: Set[str] = set()
    for e in (loop.lo, loop.hi, loop.step):
        if e is not None:
            bound_vars |= set(expr_variables(e))
    bound_vars.add(loop.var)  # index must not be written by the body
    # scalars are passed by value in this language model, so calls cannot
    # clobber loop bounds; only direct writes in the body matter
    bounds_invariant = _expr_writes_none_of(body_stmts, bound_vars)

    info = LoopInfo(
        loop=loop,
        region=region,
        lo_affine=lo_affine,
        hi_affine=hi_affine,
        step=step,
        has_io=has_io,
        has_return=has_return,
        has_calls=has_calls,
        bounds_invariant=bounds_invariant,
    )
    _scalar_flow(loop, info)
    return info


def _scalar_flow(loop: DoLoop, info: LoopInfo) -> None:
    """First-order scalar def/use classification over one iteration.

    Walks the body in order, tracking scalars definitely written so far
    on *all* paths (approximated by: written at top level or in both
    branches of an If).  A scalar read before being definitely written is
    upward exposed.  Inner-loop indices count as written.  Reductions are
    recognized syntactically.
    """
    written: Set[str] = set()

    def visit(stmts, written: Set[str]) -> Set[str]:
        for s in stmts:
            if isinstance(s, Assign):
                reads = expr_variables(s.value)
                if isinstance(s.target, ArrayRef):
                    for sub in s.target.subscripts:
                        reads |= expr_variables(sub)
                for r in sorted(reads):
                    if r not in written:
                        info.scalar_exposed_reads.add(r)
                if isinstance(s.target, VarRef):
                    info.scalar_writes.add(s.target.name)
                    if _is_reduction(s):
                        info.reductions.add(s.target.name)
                    written = written | {s.target.name}
            elif isinstance(s, DoLoop):
                for e in (s.lo, s.hi, s.step):
                    if e is not None:
                        for r in sorted(expr_variables(e)):
                            if r not in written:
                                info.scalar_exposed_reads.add(r)
                info.scalar_writes.add(s.var)
                # writes inside a loop that may execute zero times are
                # not definite: analyze the body for exposure but keep
                # only the pre-loop definite set, plus the index
                visit(s.body, written | {s.var})
                written = written | {s.var}
            elif isinstance(s, (ReadStmt,)):
                for nm in s.names:
                    info.scalar_writes.add(nm)
                    written = written | {nm}
            elif isinstance(s, PrintStmt):
                for a in s.args:
                    names = expr_variables(a) if not hasattr(a, "text") else set()
                    for r in sorted(names):
                        if r not in written:
                            info.scalar_exposed_reads.add(r)
            elif isinstance(s, Call):
                for a in s.args:
                    for r in sorted(expr_variables(a)):
                        if r not in written:
                            info.scalar_exposed_reads.add(r)
            elif isinstance(s, If):
                for r in sorted(expr_variables(s.cond)):
                    if r not in written:
                        info.scalar_exposed_reads.add(r)
                w_then = visit(s.then_body, set(written))
                w_else = visit(s.else_body, set(written))
                written = w_then & w_else
        return written

    visit(loop.body, written)
    # remove array names: expr_variables reports arrays too
    # (callers filter against the symbol table; we keep names verbatim)


def collect_loop_info(proc: ProcRegion) -> Dict[DoLoop, LoopInfo]:
    """LoopInfo for every loop in a procedure, keyed by the loop node."""
    out: Dict[DoLoop, LoopInfo] = {}
    for region in proc.loops():
        out[region.stmt] = analyze_loop(region)
    return out
