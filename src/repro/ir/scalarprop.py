"""Forward scalar propagation.

SUIF's array analysis sits on top of scalar symbolic analysis; without
it, a setup like::

    read n
    m = n + 1
    do i = 1, m
      a(i) = a(i + n) ...

treats ``m`` as an opaque symbol unrelated to ``n`` and loses the
``m = n + 1`` relation the dependence test needs.  This pass propagates
straight-line scalar definitions forward, substituting each eligible
scalar's defining affine expression into every later expression of the
unit.

Eligibility (deliberately conservative):

* the scalar is defined exactly once in the unit, by an affine
  expression at the **top level** (not under a loop or branch);
* it is never written anywhere else (no other assignment, no ``read``,
  not a loop index);
* the variables of its definition are *stable* at and after the
  definition point — themselves never rewritten later (transitively
  true for propagated scalars since substitution bottoms out in stable
  roots).

The pass returns a structurally identical program (same statement
order, fresh statement objects, renumbered identically), so loop labels
and ``nid``s line up with the original — plans computed on the
propagated program drive the original's execution unchanged.

Since PR 8 the pass runs on the generic worklist engine
(:mod:`repro.ir.dataflow`): candidate definitions become bits of a
FORWARD/ALLPATH availability problem over the unit's flow graph, and a
statement is rewritten with exactly the definitions available on every
path into it.  The pre-engine implementation is kept as
:func:`propagate_scalars_legacy`; ``tests/ir/test_scalarprop_engine.py``
pins the two byte-identical across all suite programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.dataflow import ALLPATH, FORWARD, DataflowProblem, solve
from repro.ir.exprtools import to_affine
from repro.ir.regiongraph import build_flow_graph, build_region_tree
from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    If,
    Intrinsic,
    Num,
    PrintStmt,
    Program,
    ReadStmt,
    Return,
    Stmt,
    Subroutine,
    UnOp,
    VarRef,
    assign_nids,
    walk_stmts,
)
from repro.symbolic.affine import AffineExpr


def _writes_of_unit(unit: Subroutine) -> Dict[str, int]:
    """How many times each scalar is written anywhere in the unit."""
    counts: Dict[str, int] = {}
    for s in walk_stmts(unit.body):
        if isinstance(s, Assign) and isinstance(s.target, VarRef):
            counts[s.target.name] = counts.get(s.target.name, 0) + 1
        elif isinstance(s, ReadStmt):
            for n in s.names:
                counts[n] = counts.get(n, 0) + 1
        elif isinstance(s, DoLoop):
            counts[s.var] = counts.get(s.var, 0) + 2  # loop indexes churn
    return counts


def _affine_to_expr(affine: AffineExpr) -> Optional[Expr]:
    """Render an affine expression back into AST form (integers only)."""
    if not affine.is_integral():
        return None
    out: Optional[Expr] = None
    for var, coeff in affine.terms():
        c = int(coeff)
        term: Expr = VarRef(var)
        if c == -1:
            term = UnOp("-", term)
        elif c != 1:
            term = BinOp("*", Num(abs(c)), term)
            if c < 0:
                term = UnOp("-", term)
        out = term if out is None else BinOp("+", out, term)
    const = int(affine.constant)
    if out is None:
        return Num(const)
    if const > 0:
        out = BinOp("+", out, Num(const))
    elif const < 0:
        out = BinOp("-", out, Num(-const))
    return out


def _subst_expr(expr: Expr, env: Dict[str, Expr]) -> Expr:
    if isinstance(expr, Num):
        return expr
    if isinstance(expr, VarRef):
        return env.get(expr.name, expr)
    if isinstance(expr, ArrayRef):
        return ArrayRef(
            expr.name, tuple(_subst_expr(s, env) for s in expr.subscripts)
        )
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _subst_expr(expr.left, env), _subst_expr(expr.right, env)
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _subst_expr(expr.operand, env))
    if isinstance(expr, Intrinsic):
        return Intrinsic(
            expr.name, tuple(_subst_expr(a, env) for a in expr.args)
        )
    return expr  # _StringArg and friends


def _rewrite_stmt(stmt: Stmt, env: Dict[str, Expr]) -> Stmt:
    if isinstance(stmt, Assign):
        new: Stmt = Assign(
            _subst_expr(stmt.target, env)
            if isinstance(stmt.target, ArrayRef)
            else stmt.target,
            _subst_expr(stmt.value, env),
        )
    elif isinstance(stmt, DoLoop):
        new = DoLoop(
            stmt.var,
            _subst_expr(stmt.lo, env),
            _subst_expr(stmt.hi, env),
            _subst_expr(stmt.step, env) if stmt.step is not None else None,
            [_rewrite_stmt(s, env) for s in stmt.body],
            label=stmt.label,
        )
    elif isinstance(stmt, If):
        new = If(
            _subst_expr(stmt.cond, env),
            [_rewrite_stmt(s, env) for s in stmt.then_body],
            [_rewrite_stmt(s, env) for s in stmt.else_body],
        )
    elif isinstance(stmt, Call):
        new = Call(stmt.name, [_subst_expr(a, env) for a in stmt.args])
    elif isinstance(stmt, ReadStmt):
        new = ReadStmt(list(stmt.names))
    elif isinstance(stmt, PrintStmt):
        new = PrintStmt([_subst_expr(a, env) for a in stmt.args])
    elif isinstance(stmt, Return):
        new = Return()
    else:  # pragma: no cover
        raise TypeError(f"unknown statement {stmt!r}")
    new.line = stmt.line
    return new


def _find_candidates(unit: Subroutine) -> List[Tuple[int, str, Expr]]:
    """The eligible definitions: (top-level position, name, rendering).

    This is the same sequential scan the legacy pass runs — eligibility
    is inherently positional (each rendering substitutes the earlier
    candidates) — but here it only *names* the candidates; where they
    apply is decided by the dataflow solution.
    """
    writes = _writes_of_unit(unit)
    stable: Set[str] = {
        name
        for name, decl in unit.decls.items()
        if not decl.is_array and writes.get(name, 0) <= 1
    }
    env: Dict[str, Expr] = {}
    candidates: List[Tuple[int, str, Expr]] = []
    prefix = True
    for pos, stmt in enumerate(unit.body):
        if isinstance(stmt, (DoLoop, If, Call)):
            prefix = False
        if (
            prefix
            and isinstance(stmt, Assign)
            and isinstance(stmt.target, VarRef)
            and stmt.target.name in stable
        ):
            affine = to_affine(_subst_expr(stmt.value, env))
            if affine is not None and all(
                v in stable for v in affine.variables()
            ):
                rendered = _affine_to_expr(affine)
                if rendered is not None:
                    env[stmt.target.name] = rendered
                    candidates.append((pos, stmt.target.name, rendered))
    return candidates


class _AvailableDefs(DataflowProblem):
    """FORWARD/ALLPATH: candidate defs reaching a node on *every* path.

    One bit per candidate, generated at its defining statement's flow
    node and never killed (candidates are written exactly once).
    """

    direction = FORWARD
    meet = ALLPATH

    def __init__(self, nbits: int, gen_by_node: Dict[int, Tuple[int, ...]]):
        self._nbits = nbits
        self._gen = gen_by_node

    def num_bits(self) -> int:
        return self._nbits

    def gen(self, node: int):
        return self._gen.get(node, ())


def _propagate_unit_flow(unit: Subroutine) -> Subroutine:
    candidates = _find_candidates(unit)
    if not candidates:
        body = [_rewrite_stmt(s, {}) for s in unit.body]
        return Subroutine(
            unit.name, list(unit.params), dict(unit.decls), body, unit.is_main
        )

    proc = build_region_tree(unit)
    graph = build_flow_graph(proc)
    items = proc.body_seq.items  # 1:1 with unit.body
    gen_by_node = {
        graph.node_for(items[pos]): (j,)
        for j, (pos, _, _) in enumerate(candidates)
    }
    solution = solve(_AvailableDefs(len(candidates), gen_by_node), graph)

    body: List[Stmt] = []
    for pos, stmt in enumerate(unit.body):
        avail = solution.in_mask(graph.node_for(items[pos]))
        env = {
            name: rendered
            for j, (cpos, name, rendered) in enumerate(candidates)
            if cpos < pos and (avail >> j) & 1
        }
        body.append(_rewrite_stmt(stmt, env))
    return Subroutine(
        unit.name, list(unit.params), dict(unit.decls), body, unit.is_main
    )


def _propagate_unit(unit: Subroutine) -> Subroutine:
    writes = _writes_of_unit(unit)
    stable: Set[str] = {
        name
        for name, decl in unit.decls.items()
        if not decl.is_array and writes.get(name, 0) <= 1
    }

    env: Dict[str, Expr] = {}
    body: List[Stmt] = []
    prefix = True  # still in the straight-line top-level prefix
    for stmt in unit.body:
        rewritten = _rewrite_stmt(stmt, env)
        body.append(rewritten)
        if isinstance(stmt, (DoLoop, If, Call)):
            prefix = False
        if (
            prefix
            and isinstance(stmt, Assign)
            and isinstance(stmt.target, VarRef)
            and stmt.target.name in stable
        ):
            affine = to_affine(_subst_expr(stmt.value, env))
            if affine is not None and all(
                v in stable for v in affine.variables()
            ):
                rendered = _affine_to_expr(affine)
                if rendered is not None:
                    env[stmt.target.name] = rendered
    return Subroutine(
        unit.name, list(unit.params), dict(unit.decls), body, unit.is_main
    )


def propagate_scalars(program: Program) -> Program:
    """Forward-propagate straight-line scalar definitions in every unit."""
    units = {
        name: _propagate_unit_flow(unit)
        for name, unit in program.units.items()
    }
    out = Program(program.name, units, program.main)
    assign_nids(out)
    return out


def propagate_scalars_legacy(program: Program) -> Program:
    """The pre-engine sequential implementation, kept as the identity
    reference for ``tests/ir/test_scalarprop_engine.py``."""
    units = {
        name: _propagate_unit(unit) for name, unit in program.units.items()
    }
    out = Program(program.name, units, program.main)
    assign_nids(out)
    return out
