"""Per-unit symbol tables.

Wraps the declaration map of a :class:`~repro.lang.astnodes.Subroutine`
with the queries analyses need: scalar/array classification, formal
parameter positions, affine array extents and declared sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.lang.astnodes import ASSUMED, Decl, Expr, Subroutine
from repro.symbolic.affine import AffineExpr


class SymbolTable:
    """Symbol information for one program unit."""

    def __init__(self, unit: Subroutine) -> None:
        self.unit = unit
        self._param_pos: Dict[str, int] = {
            name: k for k, name in enumerate(unit.params)
        }

    # -- classification ------------------------------------------------
    def is_declared(self, name: str) -> bool:
        return name in self.unit.decls

    def is_array(self, name: str) -> bool:
        d = self.unit.decls.get(name)
        return d is not None and d.is_array

    def is_scalar(self, name: str) -> bool:
        d = self.unit.decls.get(name)
        return d is not None and not d.is_array

    def is_formal(self, name: str) -> bool:
        return name in self._param_pos

    def formal_position(self, name: str) -> int:
        return self._param_pos[name]

    def is_integer(self, name: str) -> bool:
        d = self.unit.decls.get(name)
        return d is not None and d.typ == "integer"

    # -- arrays ----------------------------------------------------------
    def rank(self, name: str) -> int:
        d = self.unit.decls.get(name)
        if d is None or not d.is_array:
            raise KeyError(f"{name!r} is not a declared array")
        return d.rank

    def extents(self, name: str) -> Tuple[Union[Expr, str], ...]:
        d = self.unit.decls.get(name)
        if d is None or not d.is_array:
            raise KeyError(f"{name!r} is not a declared array")
        return d.dims

    def affine_extents(self, name: str) -> List[Optional[AffineExpr]]:
        """Extent of each dimension as an affine expression.

        ``None`` marks an assumed-size (``*``) or non-affine extent.
        """
        from repro.ir.exprtools import to_affine

        out: List[Optional[AffineExpr]] = []
        for dim in self.extents(name):
            if dim == ASSUMED:
                out.append(None)
            else:
                out.append(to_affine(dim))
        return out

    def declared_arrays(self) -> List[str]:
        return sorted(n for n, d in self.unit.decls.items() if d.is_array)

    def declared_scalars(self) -> List[str]:
        return sorted(n for n, d in self.unit.decls.items() if not d.is_array)

    def decl(self, name: str) -> Optional[Decl]:
        return self.unit.decls.get(name)

    def __repr__(self) -> str:
        return (
            f"SymbolTable({self.unit.name}: "
            f"{len(self.declared_scalars())} scalars, "
            f"{len(self.declared_arrays())} arrays)"
        )
