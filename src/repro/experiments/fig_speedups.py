"""FIGS — simulated speedups, base-compiled vs predicated-compiled.

Reproduces the paper's speedup figures: for every program whose outer
loops the predicated analysis newly parallelizes, execution is simulated
on 1–8 processors for the code each analysis produces.  The reference
is the uninstrumented sequential execution, so the predicated curves
pay their own run-time-test overhead.

The paper's claim regenerated here: **five programs show improved
speedups**; the other programs are essentially unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import format_table, parallel_map
from repro.machine.costmodel import MachineModel
from repro.machine.speedup import SpeedupCurve, speedup_comparison
from repro.suites import all_programs, get_program

PROCESSORS = (1, 2, 4, 8)
IMPROVEMENT_THRESHOLD = 1.15  # ≥15% better at 8 processors counts as improved


@dataclass
class ProgramSpeedup:
    program: str
    base: SpeedupCurve
    predicated: SpeedupCurve

    @property
    def improved(self) -> bool:
        return (
            self.predicated.at(8)
            >= self.base.at(8) * IMPROVEMENT_THRESHOLD
        )


@dataclass
class FigSpeedups:
    results: List[ProgramSpeedup] = field(default_factory=list)

    def improved_programs(self) -> List[str]:
        return [r.program for r in self.results if r.improved]

    def format(self) -> str:
        headers = ["program"] + [
            f"{tag} P={p}"
            for tag in ("base", "pred")
            for p in PROCESSORS
        ] + ["improved"]
        body = []
        for r in self.results:
            body.append(
                [r.program]
                + [f"{r.base.at(p):.2f}" for p in PROCESSORS]
                + [f"{r.predicated.at(p):.2f}" for p in PROCESSORS]
                + ["yes" if r.improved else "no"]
            )
        out = format_table(headers, body, title="FIGS: simulated speedups")
        improved = self.improved_programs()
        out += (
            f"\n\nprograms with improved speedup: {len(improved)} "
            f"({', '.join(improved)})"
        )
        return out


def _program_speedup(name: str) -> ProgramSpeedup:
    """Self-contained per-program worker (picklable; runs in a pool)."""
    bench = get_program(name)
    curves = speedup_comparison(
        bench.fresh_program(),
        bench.inputs,
        processors=PROCESSORS,
        model=MachineModel(),
    )
    return ProgramSpeedup(bench.name, curves["base"], curves["predicated"])


def run(
    processors: Sequence[int] = PROCESSORS,
    model: MachineModel = MachineModel(),
    jobs: int = 1,
) -> FigSpeedups:
    out = FigSpeedups()
    # simulate every program containing a predicated outer-loop win,
    # plus a few unchanged controls
    targets = [
        p.name
        for p in all_programs()
        if p.outer_win_labels() or p.name in ("swim", "arc2d", "ms2d")
    ]
    if processors != PROCESSORS or model != MachineModel():
        # custom machine settings can't be shipped to the pooled worker
        # (it builds its own defaults); run them inline
        for name in targets:
            bench = get_program(name)
            curves = speedup_comparison(
                bench.fresh_program(),
                bench.inputs,
                processors=processors,
                model=model,
            )
            out.results.append(
                ProgramSpeedup(bench.name, curves["base"], curves["predicated"])
            )
        return out
    out.results.extend(parallel_map(_program_speedup, targets, jobs))
    return out


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
