"""FIG1 — the four motivating examples of the paper's Figure 1.

(a) improves compile-time analysis — conditional def/use correlation;
(b) derives a run-time test — boundary condition between symbolic
    extents;
(c) benefits from predicate embedding — an index-dependent guard folded
    into the region inequalities;
(d) benefits from predicate extraction — the size predicate extracted
    during interprocedural ``Reshape`` ("an entire array is written if
    the problem size is divisible by one of the dimension sizes in the
    callee", Section 5).

Each example is analyzed under the base analysis, the predicated
analysis, and the predicated analysis with its key mechanism disabled —
demonstrating that the mechanism is exactly what the figure claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arraydf.options import AnalysisOptions
from repro.experiments.common import format_table, parallel_map
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program

FIG1A = """
program fig1a
  integer c, n, x
  real help(64), b(64, 64)
  read c, n, x
  do i = 1, c
    if (x > 5) then
      do j = 1, n
        help(j) = b(j, i)
      enddo
    endif
    if (x > 5) then
      do j = 1, n
        b(j, i) = help(j) + 1.0
      enddo
    endif
  enddo
end
"""

FIG1B = """
program fig1b
  integer c, n, k
  real help(256)
  read c, n, k
  do i = 1, c
    do j = 1, n
      help(j + k) = help(j) + 1.0
    enddo
  enddo
end
"""

FIG1C = """
program fig1c
  integer c, n
  real help(64)
  read c, n
  help(1) = 2.0
  do i = 1, c
    do j = 1, n
      if (j >= 2) then
        help(j) = help(1) + j * 1.0 + i
      endif
    enddo
  enddo
end
"""

FIG1D = """
program fig1d
  integer c, p, q
  real help(240)
  read c, p, q
  do i = 1, c
    call fillall(help, p, q)
    do j = 1, 240
      help(j) = help(j) * 0.5
    enddo
  enddo
end
subroutine fillall(x, p, q)
  integer p, q
  real x(p, q)
  do j = 1, q
    do i = 1, p
      x(i, j) = i * 1.0 + j
    enddo
  enddo
end
"""

EXAMPLES = {
    "fig1a": (FIG1A, "improves compile-time analysis"),
    "fig1b": (FIG1B, "derives run-time test"),
    "fig1c": (FIG1C, "benefits from predicate embedding"),
    "fig1d": (FIG1D, "benefits from predicate extraction"),
}

ABLATION_FOR = {
    "fig1a": ("base (no predicates)", AnalysisOptions.base()),
    "fig1b": (
        "no run-time tests",
        AnalysisOptions.predicated().without(runtime_tests=False),
    ),
    "fig1c": (
        "no embedding",
        AnalysisOptions.predicated().without(embedding=False),
    ),
    "fig1d": (
        "no extraction",
        AnalysisOptions.predicated().without(extraction=False),
    ),
}


@dataclass
class Fig1Result:
    # example -> {config: outer loop status}, plus the runtime test text
    statuses: Dict[str, Dict[str, str]] = field(default_factory=dict)
    runtime_tests: Dict[str, str] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["example", "claim", "base", "predicated", "ablated", "run-time test"]
        body = []
        for name, (_, claim) in EXAMPLES.items():
            s = self.statuses[name]
            body.append(
                [
                    name,
                    claim,
                    s["base"],
                    s["predicated"],
                    s["ablated"],
                    self.runtime_tests.get(name, ""),
                ]
            )
        return format_table(headers, body, title="FIG1: motivating examples")


def _outer_status(source: str, opts: AnalysisOptions) -> str:
    res = analyze_program(parse_program(source), opts)
    for l in res.loops:
        if l.label.endswith(":L1"):
            return l.status
    raise AssertionError("no outer loop found")


def _example_result(name: str):
    """Self-contained per-example worker (picklable; runs in a pool)."""
    source, _claim = EXAMPLES[name]
    _, ablated_opts = ABLATION_FOR[name]
    statuses = {
        "base": _outer_status(source, AnalysisOptions.base()),
        "predicated": _outer_status(source, AnalysisOptions.predicated()),
        "ablated": _outer_status(source, ablated_opts),
    }
    runtime_test = ""
    res = analyze_program(parse_program(source), AnalysisOptions.predicated())
    for l in res.loops:
        if l.label.endswith(":L1") and l.runtime_test:
            runtime_test = l.runtime_test
    return name, statuses, runtime_test


def run(jobs: int = 1) -> Fig1Result:
    out = Fig1Result()
    for name, statuses, runtime_test in parallel_map(
        _example_result, list(EXAMPLES), jobs
    ):
        out.statuses[name] = statuses
        if runtime_test:
            out.runtime_tests[name] = runtime_test
    return out


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
