"""Shared plumbing for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.partests.driver import ProgramResult, analyze_program
from repro.suites import all_programs
from repro.suites.compose import BenchmarkProgram

WIN_STATUSES = ("parallel", "parallel_private", "runtime")


@lru_cache(maxsize=None)
def analyzed(name: str, config: str) -> ProgramResult:
    """Memoized driver run for one (program, configuration).

    When a default summary cache is configured (``--cache DIR`` or the
    ``REPRO_CACHE_DIR`` environment variable, which worker processes
    inherit) the driver reuses on-disk procedure summaries; the tables
    built from the results are byte-identical either way.
    """
    from repro.service import default_cache
    from repro.suites import get_program

    options = {
        "base": AnalysisOptions.base(),
        "predicated": AnalysisOptions.predicated(),
        "compile_time_only": AnalysisOptions.compile_time_only(),
        "no_embedding": AnalysisOptions.predicated().without(embedding=False),
        "no_extraction": AnalysisOptions.predicated().without(extraction=False),
        "no_interproc": AnalysisOptions.predicated().without(
            interprocedural=False
        ),
    }[config]
    return analyze_program(
        get_program(name).fresh_program(), options, cache=default_cache()
    )


def _analyzed_stats():
    info = analyzed.cache_info()
    total = info.hits + info.misses
    return {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "hit_rate": (info.hits / total) if total else 0.0,
    }


perf.register_cache(
    "experiments.analyzed", _analyzed_stats, analyzed.cache_clear, obj=analyzed
)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width text table (the paper-style row rendering)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def percent(num: int, den: int) -> str:
    return f"{100 * num / den:.0f}%" if den else "-"


_T = TypeVar("_T")
_R = TypeVar("_R")


def _instrumented(fn: Callable[[_T], _R], item: _T):
    """Worker-side wrapper: run *fn* and report this process's perf state."""
    import os

    from repro import perf

    return os.getpid(), fn(item), perf.snapshot()


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], jobs: int = 1
) -> List[_R]:
    """Map *fn* over *items*, optionally fanning out over worker processes.

    Results are merged back **in input order**, so the output — and hence
    every table built from it — is byte-identical for any job count.
    *fn* must be a module-level (picklable) function and every item and
    result must pickle; the experiment workers return small dataclass
    payloads rather than full analysis objects to keep that cheap.

    Each worker also ships back its :func:`repro.perf.snapshot`; the
    parent folds the per-worker deltas (relative to its own state at
    pool creation, which forked workers inherit) into the local perf
    tables so ``--profile`` sees cache/counter activity under any job
    count.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(it) for it in items]
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial
    import multiprocessing as mp

    from repro import perf

    # fork (where available) shares the warmed parser/suite state and
    # avoids re-importing the package in every worker
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    base = perf.snapshot()
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)), mp_context=ctx
    ) as pool:
        raw = list(pool.map(partial(_instrumented, fn), items))
    per_worker: Dict[int, Dict] = {}
    for pid, _result, snap in raw:
        seen = per_worker.get(pid)
        per_worker[pid] = (
            snap if seen is None else perf.snapshot_max(seen, snap)
        )
    for snap in per_worker.values():
        perf.absorb_snapshot(perf.snapshot_delta(snap, base))
    return [result for _pid, result, _snap in raw]
