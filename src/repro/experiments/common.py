"""Shared plumbing for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.arraydf.options import AnalysisOptions
from repro.partests.driver import ProgramResult, analyze_program
from repro.suites import all_programs
from repro.suites.compose import BenchmarkProgram

WIN_STATUSES = ("parallel", "parallel_private", "runtime")


@lru_cache(maxsize=None)
def analyzed(name: str, config: str) -> ProgramResult:
    """Memoized driver run for one (program, configuration)."""
    from repro.suites import get_program

    options = {
        "base": AnalysisOptions.base(),
        "predicated": AnalysisOptions.predicated(),
        "compile_time_only": AnalysisOptions.compile_time_only(),
        "no_embedding": AnalysisOptions.predicated().without(embedding=False),
        "no_extraction": AnalysisOptions.predicated().without(extraction=False),
        "no_interproc": AnalysisOptions.predicated().without(
            interprocedural=False
        ),
    }[config]
    return analyze_program(get_program(name).fresh_program(), options)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width text table (the paper-style row rendering)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def percent(num: int, den: int) -> str:
    return f"{100 * num / den:.0f}%" if den else "-"
