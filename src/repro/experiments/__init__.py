"""Experiment harnesses — one per paper table/figure.

Each module exposes ``run()`` returning a structured result with a
``format()`` text rendering that prints the same rows/series the paper
reports.  See EXPERIMENTS.md for the paper-vs-measured record.

==========  =========================================================
FIG1        the four motivating examples of Figure 1
TAB1        per-program loop parallelization statistics
TAB2        detail of the newly parallelized (outer) loops
TAB3        category × mechanism breakdown
FIGS        speedup curves (base vs predicated, P = 1..8)
FIGO        analysis cost and run-time test overhead
==========  =========================================================
"""

from repro.experiments import (  # noqa: F401
    fig1_examples,
    fig_overhead,
    fig_speedups,
    table1_loops,
    table2_programs,
    table3_categories,
)

__all__ = [
    "fig1_examples",
    "table1_loops",
    "table2_programs",
    "table3_categories",
    "fig_speedups",
    "fig_overhead",
]
