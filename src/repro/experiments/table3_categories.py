"""TAB3 — category × mechanism breakdown of the predicated wins.

The paper classifies the newly parallelized loops by the categories of
[So, Moon & Hall]; here every win is bucketed by its ground-truth
category (from the pattern that generated it) and by the *measured*
delivery (compile-time proof vs run-time test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.common import (
    WIN_STATUSES,
    analyzed,
    format_table,
    parallel_map,
)
from repro.suites import all_programs, get_program

CATEGORIES = (
    "conditional-def",
    "boundary",
    "offset-symbolic",
    "reshape",
)


@dataclass
class Table3:
    # (category) -> [compile-time count, run-time count]
    counts: Dict[str, List[int]] = field(default_factory=dict)
    uncategorized: int = 0

    def total(self) -> Tuple[int, int]:
        ct = sum(v[0] for v in self.counts.values())
        rt = sum(v[1] for v in self.counts.values())
        return ct, rt

    def format(self) -> str:
        headers = ["category", "compile-time", "run-time test", "total"]
        body = []
        for cat in CATEGORIES:
            ct, rt = self.counts.get(cat, [0, 0])
            body.append([cat, ct, rt, ct + rt])
        ct, rt = self.total()
        body.append(["TOTAL", ct, rt, ct + rt])
        return format_table(
            headers, body, title="TAB3: win categories (So/Moon/Hall classes)"
        )


def _program_wins(name: str) -> List[Tuple[str, bool]]:
    """Per-program worker: (category, is_runtime) per win; "" = uncategorized."""
    bench = get_program(name)
    pred = analyzed(bench.name, "predicated")
    base = analyzed(bench.name, "base")
    base_status = {l.label: l.status for l in base.loops}
    wins: List[Tuple[str, bool]] = []
    for l in pred.loops:
        if l.status not in WIN_STATUSES:
            continue
        if base_status.get(l.label) in WIN_STATUSES + ("not_candidate",):
            continue
        exp = bench.expectations.get(l.label)
        category = exp.category if exp else ""
        wins.append((category, l.status == "runtime"))
    return wins


def run(jobs: int = 1) -> Table3:
    table = Table3()
    names = [b.name for b in all_programs()]
    for wins in parallel_map(_program_wins, names, jobs):
        for category, is_runtime in wins:
            if category not in CATEGORIES:
                table.uncategorized += 1
                continue
            bucket = table.counts.setdefault(category, [0, 0])
            bucket[1 if is_runtime else 0] += 1
    return table


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
