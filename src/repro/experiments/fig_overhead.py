"""FIGO — analysis cost and run-time-test overhead.

Two of the paper's quantified claims:

* the predicated analysis costs more compile time than the base
  analysis, but the blowup stays modest (per-suite wall-clock ratio);
* the derived run-time tests are **low-cost** — a handful of scalar
  predicate atoms, versus an inspector/executor whose overhead is "on
  the order of the aggregate size of the arrays" involved.  We measure
  both quantities for every run-time-tested loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.arraydf.options import AnalysisOptions
from repro.experiments.common import format_table
from repro.partests.driver import analyze_program
from repro.suites import SUITE_NAMES, all_programs


@dataclass
class SuiteCost:
    suite: str
    base_seconds: float = 0.0
    predicated_seconds: float = 0.0

    @property
    def ratio(self) -> float:
        return (
            self.predicated_seconds / self.base_seconds
            if self.base_seconds
            else float("inf")
        )


@dataclass
class TestCostRow:
    program: str
    label: str
    test_atoms: int  # cost of the derived scalar test
    inspector_cost: int  # aggregate array elements an inspector touches


@dataclass
class FigOverhead:
    suite_costs: List[SuiteCost] = field(default_factory=list)
    test_costs: List[TestCostRow] = field(default_factory=list)

    def format(self) -> str:
        body = [
            [
                c.suite,
                f"{c.base_seconds * 1000:.0f} ms",
                f"{c.predicated_seconds * 1000:.0f} ms",
                f"{c.ratio:.2f}x",
            ]
            for c in self.suite_costs
        ]
        out = format_table(
            ["suite", "base analysis", "predicated analysis", "ratio"],
            body,
            title="FIGO-a: compile-time analysis cost",
        )
        body2 = [
            [
                r.program,
                r.label,
                r.test_atoms,
                r.inspector_cost,
                f"{r.inspector_cost / max(r.test_atoms, 1):.0f}x",
            ]
            for r in self.test_costs
        ]
        out += "\n\n" + format_table(
            [
                "program",
                "loop",
                "test atoms",
                "inspector elements",
                "advantage",
            ],
            body2,
            title="FIGO-b: run-time test cost vs inspector/executor",
        )
        return out


def _inspector_cost(bench, label: str) -> int:
    """Elements an inspector would shadow: the dynamic access count of
    the loop's arrays (measured with the ELPD instrumentation itself)."""
    from repro.runtime.elpd import run_elpd

    rep = run_elpd(bench.fresh_program(), bench.inputs, target_labels=[label])
    obs = rep.observations.get(label)
    if obs is None:
        return 0
    return obs.total_iterations  # per-iteration at least one access


def run() -> FigOverhead:
    out = FigOverhead()
    per_suite: Dict[str, SuiteCost] = {
        s: SuiteCost(s) for s in SUITE_NAMES
    }
    for bench in all_programs():
        t0 = time.perf_counter()
        analyze_program(bench.fresh_program(), AnalysisOptions.base())
        t1 = time.perf_counter()
        pred = analyze_program(
            bench.fresh_program(), AnalysisOptions.predicated()
        )
        t2 = time.perf_counter()
        per_suite[bench.suite].base_seconds += t1 - t0
        per_suite[bench.suite].predicated_seconds += t2 - t1
        for l in pred.loops:
            if l.status == "runtime":
                out.test_costs.append(
                    TestCostRow(
                        bench.name,
                        l.label,
                        l.runtime_cost,
                        _inspector_cost(bench, l.label),
                    )
                )
    out.suite_costs = [per_suite[s] for s in SUITE_NAMES]
    return out


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
