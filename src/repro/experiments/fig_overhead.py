"""FIGO — analysis cost and run-time-test overhead.

Two of the paper's quantified claims:

* the predicated analysis costs more compile time than the base
  analysis, but the blowup stays modest (per-suite cost ratio);
* the derived run-time tests are **low-cost** — a handful of scalar
  predicate atoms, versus an inspector/executor whose overhead is "on
  the order of the aggregate size of the arrays" involved.  We measure
  both quantities for every run-time-tested loop.

Analysis cost is measured in **deterministic substrate operations**
(:func:`repro.perf.total_ops`: affine/constraint/system constructions,
FM eliminations and pair combinations, ground feasibility runs) rather
than wall-clock seconds.  Each measured analysis starts from cold caches
(:func:`repro.perf.reset_all_caches`), so the counts are a pure function
of the program and options — identical across machines, runs, and
``--jobs`` fan-out — while still tracking the work ratio the paper's
wall-clock figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.experiments.common import format_table, parallel_map
from repro.partests.driver import analyze_program
from repro.suites import SUITE_NAMES, all_programs, get_program


@dataclass
class SuiteCost:
    suite: str
    base_ops: int = 0
    predicated_ops: int = 0

    @property
    def ratio(self) -> float:
        return (
            self.predicated_ops / self.base_ops
            if self.base_ops
            else float("inf")
        )


@dataclass
class TestCostRow:
    program: str
    label: str
    test_atoms: int  # cost of the derived scalar test
    inspector_cost: int  # aggregate array elements an inspector touches


@dataclass
class ProgramCost:
    """Per-program worker payload (picklable)."""

    program: str
    suite: str
    base_ops: int = 0
    predicated_ops: int = 0
    test_costs: List[TestCostRow] = field(default_factory=list)


@dataclass
class FigOverhead:
    suite_costs: List[SuiteCost] = field(default_factory=list)
    test_costs: List[TestCostRow] = field(default_factory=list)

    def format(self) -> str:
        body = [
            [
                c.suite,
                f"{c.base_ops} ops",
                f"{c.predicated_ops} ops",
                f"{c.ratio:.2f}x",
            ]
            for c in self.suite_costs
        ]
        out = format_table(
            ["suite", "base analysis", "predicated analysis", "ratio"],
            body,
            title="FIGO-a: compile-time analysis cost (substrate ops)",
        )
        body2 = [
            [
                r.program,
                r.label,
                r.test_atoms,
                r.inspector_cost,
                f"{r.inspector_cost / max(r.test_atoms, 1):.0f}x",
            ]
            for r in self.test_costs
        ]
        out += "\n\n" + format_table(
            [
                "program",
                "loop",
                "test atoms",
                "inspector elements",
                "advantage",
            ],
            body2,
            title="FIGO-b: run-time test cost vs inspector/executor",
        )
        return out


def _inspector_cost(
    bench, label: str, expected_mode: Optional[bool] = None
) -> int:
    """Elements an inspector would shadow: the dynamic access count of
    the loop's arrays (measured with the ELPD instrumentation itself)."""
    from repro.runtime.elpd import run_elpd

    if expected_mode is not None and perf.bytecode_enabled() != expected_mode:
        # the test-atom and inspector columns form a ratio; both sides
        # must come from the interpreter mode the driver captured, or a
        # worker drifting to another REPRO_BYTECODE setting would mix
        # measurement regimes in one table
        raise RuntimeError(
            "fig_overhead: ELPD measurement running with "
            f"bytecode={perf.bytecode_enabled()} but the driver captured "
            f"bytecode={expected_mode}"
        )
    rep = run_elpd(bench.fresh_program(), bench.inputs, target_labels=[label])
    obs = rep.observations.get(label)
    if obs is None:
        return 0
    return obs.total_iterations  # per-iteration at least one access


def _measured_ops(bench, opts: AnalysisOptions):
    """(result, substrate op count) of one cold-cache analysis."""
    perf.reset_all_caches()
    perf.reset_counters()
    result = analyze_program(bench.fresh_program(), opts)
    return result, perf.total_ops()


def _program_cost(item) -> ProgramCost:
    """Self-contained per-program worker (picklable; runs in a pool)."""
    name, expected_mode = item
    bench = get_program(name)
    _, base_ops = _measured_ops(bench, AnalysisOptions.base())
    pred, pred_ops = _measured_ops(bench, AnalysisOptions.predicated())
    cost = ProgramCost(bench.name, bench.suite, base_ops, pred_ops)
    for l in pred.loops:
        if l.status == "runtime":
            cost.test_costs.append(
                TestCostRow(
                    bench.name,
                    l.label,
                    l.runtime_cost,
                    _inspector_cost(bench, l.label, expected_mode),
                )
            )
    return cost


def run(jobs: int = 1) -> FigOverhead:
    out = FigOverhead()
    per_suite: Dict[str, SuiteCost] = {
        s: SuiteCost(s) for s in SUITE_NAMES
    }
    # every worker must measure under the interpreter mode captured
    # here, whatever process it lands in
    mode = perf.bytecode_enabled()
    names = [(b.name, mode) for b in all_programs()]
    for cost in parallel_map(_program_cost, names, jobs):
        per_suite[cost.suite].base_ops += cost.base_ops
        per_suite[cost.suite].predicated_ops += cost.predicated_ops
        out.test_costs.extend(cost.test_costs)
    out.suite_costs = [per_suite[s] for s in SUITE_NAMES]
    return out


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
