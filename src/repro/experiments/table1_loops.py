"""TAB1 — per-program loop parallelization statistics.

Reproduces the paper's main table: for every program, the number of
candidate loops, how many the base SUIF analysis parallelizes, how many
of the remainder the ELPD run-time test reports inherently parallel on
the test input, and how many of *those* the predicated analysis
additionally parallelizes (split compile-time vs run-time test).

Headline claims regenerated here: base parallelizes over 50% of the
candidate loops; predicated array data-flow analysis parallelizes more
than 40% of the remaining inherently parallel loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.common import (
    WIN_STATUSES,
    analyzed,
    format_table,
    parallel_map,
    percent,
)
from repro.runtime.elpd import run_oracle
from repro.suites import SUITE_NAMES, all_programs, get_program


@dataclass
class ProgramRow:
    program: str
    suite: str
    loops: int = 0
    candidates: int = 0
    base_parallel: int = 0
    remaining: int = 0
    elpd_parallel: int = 0
    pred_compile_time: int = 0
    pred_runtime: int = 0

    @property
    def pred_additional(self) -> int:
        return self.pred_compile_time + self.pred_runtime


@dataclass
class Table1:
    rows: List[ProgramRow] = field(default_factory=list)

    def totals(self, suite: str = "") -> ProgramRow:
        agg = ProgramRow(program="TOTAL" + (f" {suite}" if suite else ""), suite=suite)
        for r in self.rows:
            if suite and r.suite != suite:
                continue
            agg.loops += r.loops
            agg.candidates += r.candidates
            agg.base_parallel += r.base_parallel
            agg.remaining += r.remaining
            agg.elpd_parallel += r.elpd_parallel
            agg.pred_compile_time += r.pred_compile_time
            agg.pred_runtime += r.pred_runtime
        return agg

    def format(self) -> str:
        headers = [
            "program",
            "suite",
            "loops",
            "cand",
            "base-par",
            "left",
            "elpd-par",
            "pred-ct",
            "pred-rt",
            "recovered",
        ]

        def render(r: ProgramRow):
            return [
                r.program,
                r.suite,
                r.loops,
                r.candidates,
                r.base_parallel,
                r.remaining,
                r.elpd_parallel,
                r.pred_compile_time,
                r.pred_runtime,
                percent(r.pred_additional, r.elpd_parallel),
            ]

        body = [render(r) for r in self.rows]
        for suite in SUITE_NAMES:
            body.append(render(self.totals(suite)))
        body.append(render(self.totals()))
        return format_table(headers, body, title="TAB1: loop statistics")


def _program_row(name: str) -> ProgramRow:
    """Self-contained per-program worker (picklable; runs in a pool)."""
    bench = get_program(name)
    base = analyzed(bench.name, "base")
    pred = analyzed(bench.name, "predicated")
    oracle = run_oracle(bench.fresh_program(), bench.inputs)
    base_status = {l.label: l.status for l in base.loops}
    pred_status = {l.label: l.status for l in pred.loops}

    row = ProgramRow(bench.name, bench.suite)
    for label, bstat in base_status.items():
        row.loops += 1
        if bstat == "not_candidate":
            continue
        row.candidates += 1
        if bstat in ("parallel", "parallel_private"):
            row.base_parallel += 1
            continue
        row.remaining += 1
        obs = oracle.observations.get(label)
        if obs is None or not obs.dynamically_parallel:
            continue
        row.elpd_parallel += 1
        p = pred_status.get(label)
        if p in ("parallel", "parallel_private"):
            row.pred_compile_time += 1
        elif p == "runtime":
            row.pred_runtime += 1
    return row


def run(jobs: int = 1) -> Table1:
    table = Table1()
    names = [b.name for b in all_programs()]
    table.rows.extend(parallel_map(_program_row, names, jobs))
    return table


def main() -> None:
    table = run()
    print(table.format())
    total = table.totals()
    print()
    print(
        f"base parallelizes {percent(total.base_parallel, total.candidates)} "
        f"of candidates (paper: over 50%)"
    )
    print(
        f"predicated recovers "
        f"{percent(total.pred_additional, total.elpd_parallel)} of the "
        f"remaining inherently parallel loops (paper: more than 40%)"
    )


if __name__ == "__main__":
    main()
