"""TAB2 — detail of the loops newly parallelized by predicated analysis.

Reproduces the paper's per-loop detail table: for every loop the
predicated analysis parallelizes that the base analysis could not —
program, loop, how (compile time or run-time test, with the test text),
the measured granularity (average serial work per dynamic instance) and
coverage (fraction of sequential execution spent inside the loop).
Granularity/coverage are omitted for loops nested inside other
predicated-parallelized loops, as in the paper ("SUIF only exploits a
single level of parallelism").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.codegen.plan import build_plan
from repro.experiments.common import (
    WIN_STATUSES,
    analyzed,
    format_table,
    parallel_map,
)
from repro.machine.simulate import simulate
from repro.partests.classify import classify_wins
from repro.suites import all_programs, get_program


@dataclass
class WinRow:
    program: str
    label: str
    status: str  # parallel | parallel_private | runtime
    mechanism: str
    runtime_test: str = ""
    granularity: Optional[float] = None  # avg steps per dynamic instance
    coverage: Optional[float] = None  # fraction of serial time
    enclosed: bool = False


@dataclass
class Table2:
    rows: List[WinRow] = field(default_factory=list)

    def outer_win_programs(self) -> List[str]:
        return sorted({r.program for r in self.rows if not r.enclosed})

    def format(self) -> str:
        headers = [
            "program",
            "loop",
            "how",
            "mechanism",
            "granularity",
            "coverage",
            "run-time test",
        ]
        body = []
        for r in self.rows:
            body.append(
                [
                    r.program,
                    r.label,
                    r.status,
                    r.mechanism,
                    "-" if r.granularity is None else f"{r.granularity:.0f}",
                    "-" if r.coverage is None else f"{100 * r.coverage:.0f}%",
                    r.runtime_test[:48],
                ]
            )
        out = format_table(headers, body, title="TAB2: newly parallelized loops")
        out += (
            f"\n\nprograms gaining outer parallel loops: "
            f"{len(self.outer_win_programs())} "
            f"({', '.join(self.outer_win_programs())})"
        )
        return out


def _program_rows(name: str) -> List[WinRow]:
    """Self-contained per-program worker (picklable; runs in a pool)."""
    bench = get_program(name)
    pred = analyzed(bench.name, "predicated")
    base = analyzed(bench.name, "base")
    base_status = {l.label: l.status for l in base.loops}
    wins = [
        l
        for l in pred.loops
        if l.status in WIN_STATUSES
        and base_status.get(l.label) not in WIN_STATUSES
        and base_status.get(l.label) != "not_candidate"
    ]
    if not wins:
        return []
    mech = {
        c.label: c.mechanism
        for c in classify_wins(bench.fresh_program)
    }
    # dynamic granularity/coverage from one plan-aware simulation
    plan = build_plan(pred)
    sim = simulate(bench.fresh_program(), plan, bench.inputs)
    per_loop: Dict[str, List[float]] = {}
    for inst in sim.instances:
        per_loop.setdefault(inst.label, []).append(inst.serial_work)
    win_labels = {l.label for l in wins}
    rows: List[WinRow] = []
    for l in wins:
        works = per_loop.get(l.label)
        enclosed = l.enclosed or _nested_in_win(l, pred, win_labels)
        row = WinRow(
            program=bench.name,
            label=l.label,
            status=l.status,
            mechanism=mech.get(l.label, "correlation"),
            runtime_test=l.runtime_test or "",
            enclosed=enclosed,
        )
        if not enclosed and works:
            row.granularity = sum(works) / len(works)
            row.coverage = sum(works) / sim.serial_steps
        rows.append(row)
    return rows


def run(jobs: int = 1) -> Table2:
    table = Table2()
    names = [b.name for b in all_programs()]
    for rows in parallel_map(_program_rows, names, jobs):
        table.rows.extend(rows)
    return table


def _nested_in_win(loop_result, pred_result, win_labels) -> bool:
    from repro.lang.astnodes import DoLoop, walk_stmts

    for other in pred_result.loops:
        if other.label in win_labels and other.label != loop_result.label:
            for s in walk_stmts(other.loop.body):
                if isinstance(s, DoLoop) and s.label == loop_result.label:
                    return True
    return False


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
