"""The concrete passes of the parallelization compile flow.

The passes reproduce the legacy monolithic driver exactly — each stage
is the same code the legacy path runs, lifted behind the declared-I/O
:class:`~repro.pipeline.base.Pass` contract so the
:class:`~repro.pipeline.manager.PassManager` can schedule it.  The flow:

.. code-block:: text

    source_program
        │ scalarprop            (program)
        ▼
    program ──── frontend       (program: parse-side tables)
        ▼
    engine ───── screen         (unit, tier-0 dependence screen, cacheable)
        ▼
    screen ───── summarize      (unit, bottom-up over callees, cacheable)
        ▼
    summary ──── decide         (unit, cacheable)
        ▼
    decisions ── enclose        (program: deterministic merge)
        ▼
    result ───── plan           (program)
        ▼
    plan ─────── twoversion     (program)
        ▼
    transformed

Budget boundaries: ``summarize`` checkpoints on entry and degrades a
tripped unit to the conservative whole-array summary (tainting it out of
the cache); ``decide`` demotes each tripped loop to ``serial``.  Both
are the exact legacy semantics — the manager never checkpoints itself,
so a budget trip can only ever *weaken* answers, never abort a run.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arraydf.analysis import ArrayDataflow
from repro.pipeline.base import PROGRAM_SCOPE, UNIT_SCOPE, Pass
from repro.pipeline.context import ProgramContext


class ScalarPropPass(Pass):
    """Interprocedural scalar propagation (identity when disabled)."""

    name = "scalarprop"
    scope = PROGRAM_SCOPE
    inputs = ("source_program",)
    outputs = ("program",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        program = ctx.source_program
        if ctx.opts.scalar_propagation:
            from repro.ir.scalarprop import propagate_scalars

            program = propagate_scalars(program)
        ctx.put("program", program)


class FrontendPass(Pass):
    """Build the analysis engine: callgraph, symbol tables, caches."""

    name = "frontend"
    scope = PROGRAM_SCOPE
    inputs = ("program",)
    outputs = ("engine",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        engine = ArrayDataflow(
            ctx.get("program"),
            ctx.opts,
            cache=ctx.cache,
            propagated=True,
        )
        ctx.put("engine", engine)


class ScreenPass(Pass):
    """Tier-0 graph-based dependence screen of one unit.

    Pure syntax over the scalar-propagated unit (no callee inputs, no
    budgets): classifies each loop ``independent`` / ``unknown`` /
    ``not_candidate`` and synthesizes the exact decision rows for the
    loops it settles (:mod:`repro.arraydf.screen`).  A unit whose every
    loop is settled *and* that no other unit calls is marked
    ``skip_summary`` — its data-flow walk is skipped entirely (callers
    would need the summary, so called units always summarize).

    Cacheable under the unit's own content key (empty callee-key list —
    the screen never looks across calls).  Distributable: the worker
    recomputes the screen from its rebuilt engine, which is cheaper than
    shipping it; the skip flag stays parent-side state derived from the
    callgraph after merge.  Disabled (``REPRO_DEP_SCREEN=0`` /
    ``perf.set_dep_screen(False)``) it emits an empty screen: nothing
    is skipped and downstream passes run unchanged.
    """

    name = "screen"
    scope = UNIT_SCOPE
    inputs = ("engine",)
    outputs = ("screen",)
    cacheable = True
    distributable = True

    @staticmethod
    def _key(engine, unit: str) -> Optional[str]:
        if engine.cache is None:
            return None
        from repro.lang.prettyprint import unit_str
        from repro.service.cache import unit_key

        return unit_key(unit_str(engine.program.units[unit]), [], engine.opts)

    @staticmethod
    def _compute(engine, unit: str):
        """Screen one unit via the engine's cache (worker or parent)."""
        from repro import perf
        from repro.arraydf.screen import (
            empty_screen,
            rebind_screen,
            screen_payload,
            screen_unit,
        )

        if not perf.dep_screen_enabled():
            return empty_screen(unit)
        key = ScreenPass._key(engine, unit)
        if key is not None:
            payload = engine.cache.load(key, "screen")
            if payload is not None:
                screen = rebind_screen(payload, unit)
                if screen is not None:
                    return screen
        screen = screen_unit(engine.program.units[unit], engine.symtabs[unit])
        if key is not None:
            engine.cache.store(key, "screen", screen_payload(screen))
        return screen

    @staticmethod
    def _attach(ctx: ProgramContext, unit: str, screen) -> None:
        """Derive the caller-dependent state and publish the screen."""
        engine = ctx.engine
        caller_free = not engine.callgraph.callers(unit)
        screen.skip_summary = screen.full_cover and caller_free
        if caller_free:
            # nothing reads a caller-free unit's proc value, so the walk
            # may elide outermost screened-independent loop projections
            engine.screen_hints[unit] = frozenset(screen.independent_labels)
        ctx.put("screen", screen, unit)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        assert unit is not None
        self._attach(ctx, unit, self._compute(ctx.engine, unit))

    # -- process-executor protocol -------------------------------------
    def export_task(self, ctx: ProgramContext, unit: str) -> dict:
        return {}

    def run_remote(self, engine, unit: str, task: dict) -> dict:
        from repro.arraydf.screen import screen_payload

        return {"screen": screen_payload(self._compute(engine, unit))}

    def merge_remote(self, ctx: ProgramContext, unit: str, payload: dict) -> None:
        from repro import perf
        from repro.arraydf.screen import rebind_screen

        screen = rebind_screen(payload["screen"], unit)
        if screen is None:
            # same source text on both sides, so this cannot happen in
            # practice; recompute locally (pure → identical) if it does
            perf.bump("pipeline.executor.fallback")
            self.run(ctx, unit=unit)
            return
        self._attach(ctx, unit, screen)


class SummarizePass(Pass):
    """The array data-flow walk of one unit.

    Bottom-up: a unit's walk splices in its callees' summaries, declared
    by the ``summary@callees`` input — the edge the scheduler turns into
    the callgraph dependence structure.  With a cache attached the
    engine loads/stores the summary under its content key; a budget trip
    degrades the unit soundly (and taints it out of the cache).

    Distributable: the remote task ships each direct callee's summary
    payload (the cache projection — interned values only), its content
    key and its taint flag; the worker hydrates those into its rebuilt
    engine, walks the unit, and ships the unit's own payload back with
    its taint flag, so budget degradation crosses the process boundary
    exactly as it crosses the cache boundary.

    A unit the screen marked ``skip_summary`` never walks at all: its
    summary slot takes the :class:`~repro.arraydf.screen.ScreenedUnit`
    sentinel (counted in ``screen.saved_units``) and the decide pass
    reads the screen's pre-made rows instead.  Skipped units are by
    construction caller-free, so no other unit's walk ever asks for the
    missing summary.
    """

    name = "summarize"
    scope = UNIT_SCOPE
    inputs = ("engine", "screen", "summary@callees")
    outputs = ("summary",)
    cacheable = True
    distributable = True

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        assert unit is not None
        if ctx.get("screen", unit).skip_summary:
            from repro import perf
            from repro.arraydf.screen import ScreenedUnit

            perf.bump("screen.saved_units")
            ctx.put("summary", ScreenedUnit(unit), unit)
            return
        ctx.put("summary", ctx.engine.run_unit(unit), unit)

    # -- process-executor protocol -------------------------------------
    def export_task(self, ctx: ProgramContext, unit: str) -> dict:
        from repro.arraydf.analysis import _summary_payload

        if ctx.get("screen", unit).skip_summary:
            return {"screened": True}
        engine = ctx.engine
        callees = []
        for c in sorted(engine.callgraph.callees(unit)):
            payload = ctx.payload("summary", c)
            if payload is None:
                payload = _summary_payload(ctx.get("summary", c))
            callees.append(
                (
                    c,
                    payload,
                    c in engine.tainted_units,
                    engine.unit_keys.get(c),
                )
            )
        # the elision decision is the parent's: the worker must not
        # re-derive it from its own (possibly different) screen gating
        return {
            "callees": callees,
            "elide": sorted(engine.screen_hints.get(unit, ())),
        }

    def run_remote(self, engine, unit: str, task: dict) -> dict:
        from repro import perf
        from repro.arraydf.analysis import _summary_payload

        if task.get("screened"):
            return {"screened": True}
        # always assign (even empty): a warm-fleet engine reused across
        # runs must not keep a previous task's elide hints for this unit
        engine.screen_hints[unit] = frozenset(task.get("elide") or ())
        for name, payload, tainted, key in task["callees"]:
            if tainted:
                engine.tainted_units.add(name)
            if key is not None:
                engine.unit_keys[name] = key
            if name in engine.units:
                continue
            rebound = engine._rebind_summary(payload, engine.program.units[name])
            if rebound is None:
                raise RuntimeError(
                    f"summary payload for callee {name!r} failed to rebind"
                )
            engine.units[name] = rebound
            perf.bump("pipeline.executor.hydrations")
        summary = engine.run_unit(unit)
        return {
            "summary": _summary_payload(summary),
            "tainted": unit in engine.tainted_units,
            "unit_key": engine.unit_keys.get(unit),
        }

    def merge_remote(self, ctx: ProgramContext, unit: str, payload: dict) -> None:
        from repro import perf

        if payload.get("screened"):
            from repro.arraydf.screen import ScreenedUnit

            perf.bump("screen.saved_units")
            ctx.put("summary", ScreenedUnit(unit), unit)
            return
        engine = ctx.engine
        if payload["unit_key"] is not None:
            engine.unit_keys[unit] = payload["unit_key"]
        if payload["tainted"]:
            engine.tainted_units.add(unit)
        rebound = engine._rebind_summary(
            payload["summary"], engine.program.units[unit]
        )
        if rebound is None:
            # same source text on both sides, so this cannot fail in
            # practice; recompute locally (pure → identical) if it does
            perf.bump("pipeline.executor.fallback")
            rebound = engine.run_unit(unit)
        else:
            engine.units[unit] = rebound
        ctx.put("summary", rebound, unit)
        ctx.stash_payload("summary", unit, payload["summary"])


class DecidePass(Pass):
    """Per-loop parallelization decisions for one unit.

    Pure in the unit's summary key, so decisions share it in the cache.
    Budget-tripped loops demote to ``serial`` and mark the unit
    degraded; degraded decisions are never stored.

    With the screen attached, decisions consult it two ways: a
    ``skip_summary`` unit takes the screen's pre-made rows directly
    (there is no summary to decide from — screened decisions never
    consult budgets, which is sound because they can only *add*
    ``parallel`` answers the full analysis would also prove); every
    other unit hands the screen to
    :func:`~repro.partests.driver.decide_unit`, which fast-paths the
    screen-independent loops after a per-loop cross-check.
    """

    name = "decide"
    scope = UNIT_SCOPE
    inputs = ("engine", "screen", "summary")
    outputs = ("decisions", "decisions_degraded")
    cacheable = True
    distributable = True

    @staticmethod
    def _screened_rows(engine, unit: str, screen):
        """The pre-made decision rows of a summary-skipped unit."""
        from repro.lang.astnodes import DoLoop, walk_stmts
        from repro.partests.driver import _rebind_rows

        loops_by_label = {
            s.label: s
            for s in walk_stmts(engine.program.units[unit].body)
            if isinstance(s, DoLoop)
        }
        rows = _rebind_rows(
            [screen.rows[label] for label in screen.order],
            loops_by_label,
            {},
            unit,
        )
        if rows is None:  # pragma: no cover - full_cover guarantees shape
            raise RuntimeError(
                f"screen rows for unit {unit!r} failed to rebind"
            )
        return rows

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        assert unit is not None
        from repro.partests.driver import decide_unit

        engine = ctx.engine
        screen = ctx.get("screen", unit)
        if screen.skip_summary:
            ctx.put("decisions", self._screened_rows(engine, unit, screen), unit)
            ctx.put("decisions_degraded", False, unit)
            return
        rows, degraded = decide_unit(
            engine,
            unit,
            ctx.get("summary", unit),
            engine.symtabs[unit],
            ctx.opts,
            ctx.cache,
            screen=screen,
        )
        ctx.put("decisions", rows, unit)
        ctx.put("decisions_degraded", degraded, unit)

    # -- process-executor protocol -------------------------------------
    def export_task(self, ctx: ProgramContext, unit: str) -> dict:
        from repro.arraydf.analysis import _summary_payload
        from repro.arraydf.screen import screen_payload

        engine = ctx.engine
        screen = ctx.get("screen", unit)
        if screen.skip_summary:
            # ship the rows themselves: the worker must not depend on
            # its own screen gating matching the parent's
            return {"screened": True, "screen": screen_payload(screen)}
        payload = ctx.payload("summary", unit)
        if payload is None:
            payload = _summary_payload(ctx.get("summary", unit))
        # ship the parent's screen rows: worker decisions must fast-path
        # exactly the loops the parent screened (identical by contract,
        # and elided summaries carry no projected values to decide from)
        return {
            "summary": payload,
            "tainted": unit in engine.tainted_units,
            "unit_key": engine.unit_keys.get(unit),
            "screen": screen_payload(screen),
        }

    def run_remote(self, engine, unit: str, task: dict) -> dict:
        from repro import perf
        from repro.arraydf.screen import rebind_screen
        from repro.partests.driver import _decision_rows, decide_unit

        screen = rebind_screen(task["screen"], unit)
        if screen is None:
            raise RuntimeError(
                f"screen payload for unit {unit!r} failed to rebind"
            )
        if task.get("screened"):
            rows = self._screened_rows(engine, unit, screen)
            return {"decisions": _decision_rows(rows), "degraded": False}
        if task["unit_key"] is not None:
            engine.unit_keys[unit] = task["unit_key"]
        if task["tainted"]:
            engine.tainted_units.add(unit)
        summary = engine.units.get(unit)
        if summary is None:
            summary = engine._rebind_summary(
                task["summary"], engine.program.units[unit]
            )
            if summary is None:
                raise RuntimeError(
                    f"summary payload for unit {unit!r} failed to rebind"
                )
            engine.units[unit] = summary
            perf.bump("pipeline.executor.hydrations")
        rows, degraded = decide_unit(
            engine,
            unit,
            summary,
            engine.symtabs[unit],
            engine.opts,
            engine.cache,
            screen=screen,
        )
        return {"decisions": _decision_rows(rows), "degraded": degraded}

    def merge_remote(self, ctx: ProgramContext, unit: str, payload: dict) -> None:
        from repro import perf
        from repro.arraydf.screen import ScreenedUnit
        from repro.partests.driver import _rebind_decisions

        summary = ctx.get("summary", unit)
        if isinstance(summary, ScreenedUnit):
            screen = ctx.get("screen", unit)
            ctx.put(
                "decisions", self._screened_rows(ctx.engine, unit, screen), unit
            )
            ctx.put("decisions_degraded", False, unit)
            return
        rows = _rebind_decisions(payload["decisions"], summary, unit)
        if rows is None:
            # cannot fail for same-parse payloads; recompute locally
            perf.bump("pipeline.executor.fallback")
            self.run(ctx, unit=unit)
            return
        ctx.put("decisions", rows, unit)
        ctx.put("decisions_degraded", payload["degraded"], unit)


class EnclosePass(Pass):
    """Assemble the :class:`~repro.partests.driver.ProgramResult`.

    The deterministic merge point: per-unit decisions are concatenated
    in program (parse) order — never in completion order — so the
    result is byte-identical for any worker count.  Loops nested inside
    a parallelized loop are flagged ``enclosed`` here because the
    marking needs every unit's decisions at once.
    """

    name = "enclose"
    scope = PROGRAM_SCOPE
    inputs = ("source_program", "decisions", "decisions_degraded")
    outputs = ("result", "degraded")

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        from repro.partests.driver import ProgramResult, mark_enclosed

        result = ProgramResult(ctx.source_program, ctx.opts)
        degraded = False
        for name in ctx.unit_names():
            result.loops.extend(ctx.get("decisions", name))
            degraded = degraded or ctx.get("decisions_degraded", name)
        mark_enclosed(result)
        ctx.put("result", result)
        ctx.put("degraded", degraded)


class PlanPass(Pass):
    """Lower loop decisions into a :class:`ParallelPlan`."""

    name = "plan"
    scope = PROGRAM_SCOPE
    inputs = ("result",)
    outputs = ("plan",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        from repro.codegen.plan import build_plan

        ctx.put("plan", build_plan(ctx.get("result")))


class TwoVersionPass(Pass):
    """Source-to-source two-version transformation of the program."""

    name = "twoversion"
    scope = PROGRAM_SCOPE
    inputs = ("plan", "source_program")
    outputs = ("transformed",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        from repro.codegen.twoversion import transform_program

        ctx.put(
            "transformed",
            transform_program(ctx.source_program, ctx.get("plan")),
        )


def analysis_passes() -> Tuple[Pass, ...]:
    """The full compile flow, in pipeline order."""
    return (
        ScalarPropPass(),
        FrontendPass(),
        ScreenPass(),
        SummarizePass(),
        DecidePass(),
        EnclosePass(),
        PlanPass(),
        TwoVersionPass(),
    )
