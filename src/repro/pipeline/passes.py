"""The concrete passes of the parallelization compile flow.

The passes reproduce the legacy monolithic driver exactly — each stage
is the same code the legacy path runs, lifted behind the declared-I/O
:class:`~repro.pipeline.base.Pass` contract so the
:class:`~repro.pipeline.manager.PassManager` can schedule it.  The flow:

.. code-block:: text

    source_program
        │ scalarprop            (program)
        ▼
    program ──── frontend       (program: parse-side tables)
        ▼
    engine ───── summarize      (unit, bottom-up over callees, cacheable)
        ▼
    summary ──── decide         (unit, cacheable)
        ▼
    decisions ── enclose        (program: deterministic merge)
        ▼
    result ───── plan           (program)
        ▼
    plan ─────── twoversion     (program)
        ▼
    transformed

Budget boundaries: ``summarize`` checkpoints on entry and degrades a
tripped unit to the conservative whole-array summary (tainting it out of
the cache); ``decide`` demotes each tripped loop to ``serial``.  Both
are the exact legacy semantics — the manager never checkpoints itself,
so a budget trip can only ever *weaken* answers, never abort a run.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arraydf.analysis import ArrayDataflow
from repro.pipeline.base import PROGRAM_SCOPE, UNIT_SCOPE, Pass
from repro.pipeline.context import ProgramContext


class ScalarPropPass(Pass):
    """Interprocedural scalar propagation (identity when disabled)."""

    name = "scalarprop"
    scope = PROGRAM_SCOPE
    inputs = ("source_program",)
    outputs = ("program",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        program = ctx.source_program
        if ctx.opts.scalar_propagation:
            from repro.ir.scalarprop import propagate_scalars

            program = propagate_scalars(program)
        ctx.put("program", program)


class FrontendPass(Pass):
    """Build the analysis engine: callgraph, symbol tables, caches."""

    name = "frontend"
    scope = PROGRAM_SCOPE
    inputs = ("program",)
    outputs = ("engine",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        engine = ArrayDataflow(
            ctx.get("program"),
            ctx.opts,
            cache=ctx.cache,
            propagated=True,
        )
        ctx.put("engine", engine)


class SummarizePass(Pass):
    """The array data-flow walk of one unit.

    Bottom-up: a unit's walk splices in its callees' summaries, declared
    by the ``summary@callees`` input — the edge the scheduler turns into
    the callgraph dependence structure.  With a cache attached the
    engine loads/stores the summary under its content key; a budget trip
    degrades the unit soundly (and taints it out of the cache).

    Distributable: the remote task ships each direct callee's summary
    payload (the cache projection — interned values only), its content
    key and its taint flag; the worker hydrates those into its rebuilt
    engine, walks the unit, and ships the unit's own payload back with
    its taint flag, so budget degradation crosses the process boundary
    exactly as it crosses the cache boundary.
    """

    name = "summarize"
    scope = UNIT_SCOPE
    inputs = ("engine", "summary@callees")
    outputs = ("summary",)
    cacheable = True
    distributable = True

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        assert unit is not None
        ctx.put("summary", ctx.engine.run_unit(unit), unit)

    # -- process-executor protocol -------------------------------------
    def export_task(self, ctx: ProgramContext, unit: str) -> dict:
        from repro.arraydf.analysis import _summary_payload

        engine = ctx.engine
        callees = []
        for c in sorted(engine.callgraph.callees(unit)):
            payload = ctx.payload("summary", c)
            if payload is None:
                payload = _summary_payload(ctx.get("summary", c))
            callees.append(
                (
                    c,
                    payload,
                    c in engine.tainted_units,
                    engine.unit_keys.get(c),
                )
            )
        return {"callees": callees}

    def run_remote(self, engine, unit: str, task: dict) -> dict:
        from repro import perf
        from repro.arraydf.analysis import _summary_payload

        for name, payload, tainted, key in task["callees"]:
            if tainted:
                engine.tainted_units.add(name)
            if key is not None:
                engine.unit_keys[name] = key
            if name in engine.units:
                continue
            rebound = engine._rebind_summary(payload, engine.program.units[name])
            if rebound is None:
                raise RuntimeError(
                    f"summary payload for callee {name!r} failed to rebind"
                )
            engine.units[name] = rebound
            perf.bump("pipeline.executor.hydrations")
        summary = engine.run_unit(unit)
        return {
            "summary": _summary_payload(summary),
            "tainted": unit in engine.tainted_units,
            "unit_key": engine.unit_keys.get(unit),
        }

    def merge_remote(self, ctx: ProgramContext, unit: str, payload: dict) -> None:
        from repro import perf

        engine = ctx.engine
        if payload["unit_key"] is not None:
            engine.unit_keys[unit] = payload["unit_key"]
        if payload["tainted"]:
            engine.tainted_units.add(unit)
        rebound = engine._rebind_summary(
            payload["summary"], engine.program.units[unit]
        )
        if rebound is None:
            # same source text on both sides, so this cannot fail in
            # practice; recompute locally (pure → identical) if it does
            perf.bump("pipeline.executor.fallback")
            rebound = engine.run_unit(unit)
        else:
            engine.units[unit] = rebound
        ctx.put("summary", rebound, unit)
        ctx.stash_payload("summary", unit, payload["summary"])


class DecidePass(Pass):
    """Per-loop parallelization decisions for one unit.

    Pure in the unit's summary key, so decisions share it in the cache.
    Budget-tripped loops demote to ``serial`` and mark the unit
    degraded; degraded decisions are never stored.
    """

    name = "decide"
    scope = UNIT_SCOPE
    inputs = ("engine", "summary")
    outputs = ("decisions", "decisions_degraded")
    cacheable = True
    distributable = True

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        assert unit is not None
        from repro.partests.driver import decide_unit

        engine = ctx.engine
        rows, degraded = decide_unit(
            engine,
            unit,
            ctx.get("summary", unit),
            engine.symtabs[unit],
            ctx.opts,
            ctx.cache,
        )
        ctx.put("decisions", rows, unit)
        ctx.put("decisions_degraded", degraded, unit)

    # -- process-executor protocol -------------------------------------
    def export_task(self, ctx: ProgramContext, unit: str) -> dict:
        from repro.arraydf.analysis import _summary_payload

        engine = ctx.engine
        payload = ctx.payload("summary", unit)
        if payload is None:
            payload = _summary_payload(ctx.get("summary", unit))
        return {
            "summary": payload,
            "tainted": unit in engine.tainted_units,
            "unit_key": engine.unit_keys.get(unit),
        }

    def run_remote(self, engine, unit: str, task: dict) -> dict:
        from repro import perf
        from repro.partests.driver import _decision_rows, decide_unit

        if task["unit_key"] is not None:
            engine.unit_keys[unit] = task["unit_key"]
        if task["tainted"]:
            engine.tainted_units.add(unit)
        summary = engine.units.get(unit)
        if summary is None:
            summary = engine._rebind_summary(
                task["summary"], engine.program.units[unit]
            )
            if summary is None:
                raise RuntimeError(
                    f"summary payload for unit {unit!r} failed to rebind"
                )
            engine.units[unit] = summary
            perf.bump("pipeline.executor.hydrations")
        rows, degraded = decide_unit(
            engine, unit, summary, engine.symtabs[unit], engine.opts, engine.cache
        )
        return {"decisions": _decision_rows(rows), "degraded": degraded}

    def merge_remote(self, ctx: ProgramContext, unit: str, payload: dict) -> None:
        from repro import perf
        from repro.partests.driver import _rebind_decisions

        rows = _rebind_decisions(
            payload["decisions"], ctx.get("summary", unit), unit
        )
        if rows is None:
            # cannot fail for same-parse payloads; recompute locally
            perf.bump("pipeline.executor.fallback")
            self.run(ctx, unit=unit)
            return
        ctx.put("decisions", rows, unit)
        ctx.put("decisions_degraded", payload["degraded"], unit)


class EnclosePass(Pass):
    """Assemble the :class:`~repro.partests.driver.ProgramResult`.

    The deterministic merge point: per-unit decisions are concatenated
    in program (parse) order — never in completion order — so the
    result is byte-identical for any worker count.  Loops nested inside
    a parallelized loop are flagged ``enclosed`` here because the
    marking needs every unit's decisions at once.
    """

    name = "enclose"
    scope = PROGRAM_SCOPE
    inputs = ("source_program", "decisions", "decisions_degraded")
    outputs = ("result", "degraded")

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        from repro.partests.driver import ProgramResult, mark_enclosed

        result = ProgramResult(ctx.source_program, ctx.opts)
        degraded = False
        for name in ctx.unit_names():
            result.loops.extend(ctx.get("decisions", name))
            degraded = degraded or ctx.get("decisions_degraded", name)
        mark_enclosed(result)
        ctx.put("result", result)
        ctx.put("degraded", degraded)


class PlanPass(Pass):
    """Lower loop decisions into a :class:`ParallelPlan`."""

    name = "plan"
    scope = PROGRAM_SCOPE
    inputs = ("result",)
    outputs = ("plan",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        from repro.codegen.plan import build_plan

        ctx.put("plan", build_plan(ctx.get("result")))


class TwoVersionPass(Pass):
    """Source-to-source two-version transformation of the program."""

    name = "twoversion"
    scope = PROGRAM_SCOPE
    inputs = ("plan", "source_program")
    outputs = ("transformed",)

    def run(self, ctx: ProgramContext, unit: Optional[str] = None) -> None:
        from repro.codegen.twoversion import transform_program

        ctx.put(
            "transformed",
            transform_program(ctx.source_program, ctx.get("plan")),
        )


def analysis_passes() -> Tuple[Pass, ...]:
    """The full compile flow, in pipeline order."""
    return (
        ScalarPropPass(),
        FrontendPass(),
        SummarizePass(),
        DecidePass(),
        EnclosePass(),
        PlanPass(),
        TwoVersionPass(),
    )
