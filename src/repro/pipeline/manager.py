"""Dependency-aware scheduling of passes over compilation units.

The :class:`PassManager` owns *when* pass bodies run; the passes own
*what* they compute.  Scheduling is derived entirely from the declared
artifact wiring:

* **program-scope passes are barriers** — one task, run alone;
* **consecutive unit-scope passes form a region** — one task per
  (pass, unit), ordered only by real data dependences: a task depends on
  the earlier region pass producing each of its inputs for its own unit,
  and — for inputs declared ``<artifact>@callees`` — on the producing
  task of every callee.  That second rule is exactly the bottom-up
  callgraph order, so independent subtrees of the (acyclic) callgraph
  have no path between them and run concurrently under ``jobs > 1``.

Determinism: tasks only write unit-keyed artifacts into the
:class:`~repro.pipeline.context.ProgramContext`; every merge across
units happens in a later barrier pass that reads them in program (parse)
order.  Results are therefore byte-identical for any worker count *and
any executor* — the integration suite pins this.

Executors: ``jobs > 1`` regions run on worker threads by default, or —
when every region pass is distributable and ``executor="process"`` /
``REPRO_EXECUTOR=process`` selects it — on the shared process pool of
:mod:`repro.pipeline.executor`, which ships picklable task payloads out
and merges the hydrated results back in the parent (see
``docs/EXECUTION.md`` for the end-to-end model).

The serial order (``jobs=1``) is pass-major with units bottom-up, which
is the legacy driver's exact execution order.

The dependence structure of a region is a pure function of
``(units, callgraph edges, region passes)`` and is memoized in the
registered ``pipeline.schedule`` table, so repeated analyses of the same
program (the serving loop) skip rebuilding it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import perf
from repro.pipeline import executor as pexec
from repro.service.budgets import active_budget, adopt_scope, suspended
from repro.pipeline.base import (
    PROGRAM_SCOPE,
    ROOT_ARTIFACT,
    UNIT_SCOPE,
    Pass,
    base_artifact,
    is_callee_input,
)
from repro.pipeline.context import ProgramContext

#: a region task: (index of the pass within its region, unit name)
Task = Tuple[int, str]


class PipelineWiringError(Exception):
    """A pass reads an artifact nothing earlier produces (wiring bug)."""


#: memoized region dependence structures (see module docstring)
_schedule_memo = perf.memo_table("pipeline.schedule")


def _build_region_schedule(
    units: Tuple[str, ...],
    edges: Tuple[Tuple[str, str], ...],
    region: Tuple[Pass, ...],
) -> Dict:
    """The task graph of one unit-scope region (deterministic)."""
    unit_set = set(units)
    callee_map: Dict[str, List[str]] = {u: [] for u in units}
    for caller, callee in edges:
        if caller in unit_set and callee in unit_set and caller != callee:
            callee_map[caller].append(callee)
    for u in callee_map:
        callee_map[u] = sorted(set(callee_map[u]))

    # bottom-up rank (callees before callers), the serial unit order
    order: List[str] = []
    seen: Set[str] = set()

    def visit(u: str) -> None:
        if u in seen:
            return
        seen.add(u)
        for v in callee_map[u]:
            visit(v)
        order.append(u)

    for u in sorted(units):
        visit(u)
    rank = {u: i for i, u in enumerate(order)}

    producer: Dict[str, int] = {}
    for j, p in enumerate(region):
        for out in p.outputs:
            producer[out] = j

    def task_key(t: Task) -> Tuple[int, int]:
        return (t[0], rank[t[1]])

    tasks: List[Task] = sorted(
        ((i, u) for i in range(len(region)) for u in units), key=task_key
    )
    deps: Dict[Task, Tuple[Task, ...]] = {}
    for i, u in tasks:
        need: Set[Task] = set()
        for inp in region[i].inputs:
            j = producer.get(base_artifact(inp))
            if j is None:
                continue  # produced before the region: a barrier artifact
            if is_callee_input(inp):
                need.update((j, c) for c in callee_map[u])
            elif j < i:
                need.add((j, u))
        deps[(i, u)] = tuple(sorted(need, key=task_key))

    # wave = longest dependence depth (the explain view of parallelism)
    wave: Dict[Task, int] = {}

    def depth(t: Task) -> int:
        if t not in wave:
            ds = deps[t]
            wave[t] = 1 + max((depth(d) for d in ds)) if ds else 0
        return wave[t]

    for t in tasks:
        depth(t)

    # independent subtrees: weakly-connected callgraph components
    parent = {u: u for u in units}

    def find(u: str) -> str:
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = parent[u]
        return u

    for caller, callees in callee_map.items():
        for callee in callees:
            ra, rb = find(caller), find(callee)
            if ra != rb:
                parent[rb] = ra
    components: Dict[str, List[str]] = {}
    for u in units:
        components.setdefault(find(u), []).append(u)
    groups = sorted(
        (sorted(members) for members in components.values()),
        key=lambda g: min(rank[u] for u in g),
    )
    group_of = {u: gi for gi, g in enumerate(groups) for u in g}

    return {
        "tasks": tasks,
        "deps": deps,
        "wave": wave,
        "rank": rank,
        "groups": groups,
        "group_of": group_of,
        "task_key": task_key,
    }


class PassManager:
    """Runs a pass sequence over one :class:`ProgramContext`."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes: Tuple[Pass, ...] = tuple(passes)

    # ------------------------------------------------------------------
    # selection and validation
    # ------------------------------------------------------------------
    def _select(self, ctx: ProgramContext, goals) -> List[Pass]:
        """The passes needed to produce *goals*, in pipeline order.

        A requirement already present in the context (the program-level
        cache fast path preloads ``result``) stops the backward chain,
        so a warm run schedules nothing upstream of the preload.
        """
        if goals is None:
            return list(self.passes)
        producers: Dict[str, Pass] = {}
        for p in self.passes:
            for out in p.outputs:
                producers[out] = p
        needed: Set[int] = set()

        def require(artifact: str, whom: str) -> None:
            if artifact == ROOT_ARTIFACT or ctx.has(artifact):
                return
            p = producers.get(artifact)
            if p is None:
                raise PipelineWiringError(
                    f"no pass produces artifact {artifact!r}"
                    f" (required by {whom})"
                )
            if id(p) in needed:
                return
            needed.add(id(p))
            for inp in p.inputs:
                base = base_artifact(inp)
                if base not in p.outputs:  # self-edge: summary@callees
                    require(base, p.name)

        for g in goals:
            require(g, "goals")
        return [p for p in self.passes if id(p) in needed]

    def _validate(self, ctx: ProgramContext, selected: List[Pass]) -> None:
        """Every selected pass's inputs must be produced earlier (or be
        preloaded); raises :class:`PipelineWiringError` otherwise."""
        available: Set[str] = {ROOT_ARTIFACT}
        available.update(ctx.available_artifacts())
        for p in selected:
            for inp in p.inputs:
                base = base_artifact(inp)
                if is_callee_input(inp) and p.scope != UNIT_SCOPE:
                    raise PipelineWiringError(
                        f"pass {p.name!r} is program-scope but declares"
                        f" callee input {inp!r}"
                    )
                if base in available or base in p.outputs:
                    continue
                raise PipelineWiringError(
                    f"pass {p.name!r} reads {base!r}, which no earlier"
                    " pass produces and the context does not preload"
                )
            available.update(p.outputs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        ctx: ProgramContext,
        jobs: Optional[int] = 1,
        goals=None,
        explain: bool = False,
        executor: Optional[str] = None,
    ) -> ProgramContext:
        jobs = pexec.resolve_jobs(jobs)
        kind = pexec.executor_kind(executor)
        selected = self._select(ctx, goals)
        self._validate(ctx, selected)
        records: List[dict] = []
        region_groups: List[List[List[str]]] = []
        t0 = time.perf_counter()
        idx = 0
        while idx < len(selected):
            p = selected[idx]
            if p.scope == PROGRAM_SCOPE:
                if all(ctx.has(out) for out in p.outputs):
                    records.append({"pass": p.name, "unit": None, "skipped": True})
                else:
                    self._run_task(ctx, p, None, records, t0)
                idx += 1
            else:
                region: List[Pass] = []
                while idx < len(selected) and selected[idx].scope == UNIT_SCOPE:
                    region.append(selected[idx])
                    idx += 1
                sched = self._run_region(
                    ctx, tuple(region), jobs, records, t0, kind
                )
                region_groups.append(sched["groups"])
        if explain:
            ctx.explain = self._explain(
                ctx, selected, records, region_groups, jobs, kind
            )
        return ctx

    def _run_task(
        self,
        ctx: ProgramContext,
        p: Pass,
        unit: Optional[str],
        records: List[dict],
        t0: float,
        wave: Optional[int] = None,
        group: Optional[int] = None,
    ) -> None:
        start = time.perf_counter()
        with perf.phase(f"pass.{p.name}"):
            p.run(ctx, unit=unit)
        record = {
            "pass": p.name,
            "unit": unit,
            "start": round(start - t0, 6),
            "seconds": round(time.perf_counter() - start, 6),
            "worker": threading.current_thread().name,
        }
        if wave is not None:
            record["wave"] = wave
        if group is not None:
            record["group"] = group
        records.append(record)

    def _schedule(
        self,
        units: Tuple[str, ...],
        edges: Tuple[Tuple[str, str], ...],
        region: Tuple[Pass, ...],
    ) -> Dict:
        key = (units, edges, tuple(p.name for p in region))
        sched = _schedule_memo.get(key)
        if sched is None:
            sched = _build_region_schedule(units, edges, region)
            _schedule_memo.data[key] = sched
        return sched

    def _run_region(
        self,
        ctx: ProgramContext,
        region: Tuple[Pass, ...],
        jobs: int,
        records: List[dict],
        t0: float,
        kind: str = "thread",
    ) -> Dict:
        engine = ctx.engine
        units = ctx.unit_names()
        edges = tuple(engine.callgraph.edge_list())
        sched = self._schedule(units, edges, region)
        tasks: List[Task] = sched["tasks"]
        deps: Dict[Task, Tuple[Task, ...]] = sched["deps"]

        def launch(t: Task) -> None:
            i, u = t
            self._run_task(
                ctx,
                region[i],
                u,
                records,
                t0,
                wave=sched["wave"][t],
                group=sched["group_of"][u],
            )

        if jobs <= 1 or len(units) <= 1:
            for t in tasks:
                launch(t)
            return sched

        if kind == "process":
            if all(p.distributable for p in region):
                self._run_region_process(
                    ctx, region, jobs, records, t0, sched
                )
                return sched
            # a non-distributable unit pass in the region: fall back to
            # the (always correct) thread path rather than failing
            perf.bump("pipeline.executor.fallback")

        remaining: Dict[Task, Set[Task]] = {t: set(deps[t]) for t in tasks}
        dependents: Dict[Task, List[Task]] = {}
        for t, ds in deps.items():
            for d in ds:
                dependents.setdefault(d, []).append(t)
        errors: List[Tuple[Task, BaseException]] = []
        # the active budget is thread-local (several service jobs may run
        # concurrently, each under its own); region worker threads adopt
        # the scheduling thread's scope so every task of this request
        # charges the same request-wide book-keeping
        scope = active_budget()

        def launch_scoped(t: Task) -> None:
            with adopt_scope(scope):
                launch(t)

        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="pipeline"
        ) as pool:
            pending: Dict = {}

            def submit(t: Task) -> None:
                pending[pool.submit(launch_scoped, t)] = t

            for t in tasks:
                if not remaining[t]:
                    submit(t)
            while pending:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                ready: List[Task] = []
                for fut in done:
                    t = pending.pop(fut)
                    exc = fut.exception()
                    if exc is not None:
                        errors.append((t, exc))
                        continue
                    for d in dependents.get(t, ()):
                        waiting = remaining[d]
                        waiting.discard(t)
                        if not waiting:
                            ready.append(d)
                if errors:
                    continue  # drain in-flight work, submit nothing new
                for t in sorted(ready, key=sched["task_key"]):
                    submit(t)
        if errors:
            errors.sort(key=lambda e: sched["task_key"](e[0]))
            raise errors[0][1]
        return sched

    def _run_region_process(
        self,
        ctx: ProgramContext,
        region: Tuple[Pass, ...],
        jobs: int,
        records: List[dict],
        t0: float,
        sched: Dict,
    ) -> None:
        """The process-executor schedule of one unit-scope region.

        Same dependence-driven loop as the thread path, but each ready
        task is exported to a picklable form and shipped to the shared
        process pool; completed payloads are merged (hydrated) in the
        parent as they arrive.  Artifacts are unit-keyed and merges
        rebind pure payloads, so the final store contents — and hence
        the downstream barrier passes — are byte-identical to any other
        schedule.  Worker perf snapshots and captured FM fallback
        warnings are folded in per completion.
        """
        from repro.linalg.fourier_motzkin import replay_fallback_warnings

        tasks: List[Task] = sched["tasks"]
        deps: Dict[Task, Tuple[Task, ...]] = sched["deps"]
        header = pexec.make_header(ctx.get("program"), ctx.opts, ctx.cache)
        pool = pexec.process_pool(jobs)

        remaining: Dict[Task, Set[Task]] = {t: set(deps[t]) for t in tasks}
        dependents: Dict[Task, List[Task]] = {}
        for t, ds in deps.items():
            for d in ds:
                dependents.setdefault(d, []).append(t)
        errors: List[Tuple[Task, BaseException]] = []
        pending: Dict = {}

        def submit(t: Task) -> None:
            i, u = t
            # export + pickle under suspended(): projecting completed
            # upstream results into a shippable blob is bookkeeping and
            # may not charge (or trip) the request budget
            with suspended():
                task_blob = pexec.dump_task(region[i].export_task(ctx, u))
            perf.bump("pipeline.executor.tasks")
            fut = pool.submit(
                pexec.run_remote_task,
                header,
                pexec.remaining_budget(),
                region[i],
                u,
                task_blob,
            )
            pending[fut] = (t, time.perf_counter())

        for t in tasks:
            if not remaining[t]:
                submit(t)
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            ready: List[Task] = []
            for fut in done:
                t, submitted = pending.pop(fut)
                try:
                    out = pexec.load_result(fut.result())
                except BaseException as exc:
                    errors.append((t, exc))
                    continue
                pexec.absorb_worker(out["pid"], out["snapshot"])
                replay_fallback_warnings(out["warnings"])
                i, u = t
                # merging a completed result may not re-trip the (possibly
                # exhausted) request budget; degradation travels in the
                # payload's taint/degraded flags instead
                with suspended():
                    region[i].merge_remote(ctx, u, out["payload"])
                records.append(
                    {
                        "pass": region[i].name,
                        "unit": u,
                        "start": round(submitted - t0, 6),
                        "seconds": round(out["seconds"], 6),
                        "worker": f"proc-{out['pid']}",
                        "wave": sched["wave"][t],
                        "group": sched["group_of"][u],
                    }
                )
                for d in dependents.get(t, ()):
                    waiting = remaining[d]
                    waiting.discard(t)
                    if not waiting:
                        ready.append(d)
            if errors:
                continue  # drain in-flight work, submit nothing new
            for t in sorted(ready, key=sched["task_key"]):
                submit(t)
        if errors:
            # a broken pool poisons every later submit; rebuild it lazily
            pexec.shutdown_pool()
            errors.sort(key=lambda e: sched["task_key"](e[0]))
            raise errors[0][1]

    # ------------------------------------------------------------------
    # explain (--explain-pipeline)
    # ------------------------------------------------------------------
    def _explain(
        self,
        ctx: ProgramContext,
        selected: List[Pass],
        records: List[dict],
        region_groups: List[List[List[str]]],
        jobs: int,
        kind: str = "thread",
    ) -> dict:
        ran = [r for r in records if not r.get("skipped")]
        per_pass: Dict[str, float] = {}
        for r in ran:
            per_pass[r["pass"]] = round(
                per_pass.get(r["pass"], 0.0) + r["seconds"], 6
            )
        callgraph: List[List[str]] = []
        if ctx.has("engine"):
            callgraph = [list(e) for e in ctx.engine.callgraph.edge_list()]
        workers = sorted({r["worker"] for r in ran})
        parallel_groups = [
            groups for groups in region_groups if len(groups) > 1
        ]
        waves: Dict[int, List[List[Optional[str]]]] = {}
        for r in ran:
            if "wave" in r:
                waves.setdefault(r["wave"], []).append([r["pass"], r["unit"]])
        return {
            "jobs": jobs,
            "executor": kind,
            "units": list(ctx.unit_names()),
            "callgraph": callgraph,
            "passes": [
                dict(
                    p.describe(),
                    skipped=any(
                        r.get("skipped") and r["pass"] == p.name
                        for r in records
                    ),
                )
                for p in selected
            ],
            # independent callgraph subtrees, per unit-scope region;
            # under jobs > 1 distinct groups share no dependence path
            # and run concurrently
            "groups": region_groups,
            "parallel_subtrees": parallel_groups,
            # tasks sharing a wave have no dependence path between them:
            # any two may run concurrently under jobs > 1
            "waves": [waves[w] for w in sorted(waves)],
            "workers": workers,
            "schedule": records,
            "pass_seconds": per_pass,
        }
