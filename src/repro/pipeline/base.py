"""The typed pass contract.

A :class:`Pass` is one stage of the compile flow with *declared* data
dependencies: it names the artifacts it reads (``inputs``) and the
artifacts it writes (``outputs``).  Artifacts live in a
:class:`~repro.pipeline.context.ProgramContext`, keyed per compilation
unit for unit-scoped passes and per program for program-scoped ones.
The :class:`~repro.pipeline.manager.PassManager` uses the declarations
— never the pass bodies — to schedule work, so the dependence structure
of the analysis itself is explicit and independent subtrees of the
callgraph can run concurrently.

The contract every pass must honor:

* **declared I/O only** — ``run`` may read exactly its declared inputs
  (for unit scope: its own unit's artifacts, plus its callees' for
  inputs suffixed ``@callees``) and must write every declared output;
* **purity per key** — a unit-scoped pass result is a pure function of
  its declared inputs, so concurrent execution over independent units
  (and the content-addressed cache) cannot change results;
* **budget behavior** — a pass that can exhaust the active
  :class:`~repro.service.budgets.Budget` must degrade *soundly* (answers
  only move toward "not parallel") and mark the context degraded so
  nothing downstream is cached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.context import ProgramContext

#: suffix marking a unit-scope input that is read from the unit's
#: callees rather than the unit itself (the bottom-up callgraph edge)
CALLEES_SUFFIX = "@callees"

#: the one artifact every pipeline starts from (preloaded by the context)
ROOT_ARTIFACT = "source_program"

PROGRAM_SCOPE = "program"
UNIT_SCOPE = "unit"


def base_artifact(name: str) -> str:
    """Strip the ``@callees`` marker off an input declaration."""
    if name.endswith(CALLEES_SUFFIX):
        return name[: -len(CALLEES_SUFFIX)]
    return name


def is_callee_input(name: str) -> bool:
    return name.endswith(CALLEES_SUFFIX)


class Pass:
    """Base class for pipeline passes (see the module docstring)."""

    #: unique pass name; also the perf phase key (``pass.<name>``)
    name: str = "?"
    #: "program" (one task) or "unit" (one task per compilation unit)
    scope: str = PROGRAM_SCOPE
    #: artifacts read; unit scope may mark inputs ``<artifact>@callees``
    inputs: Tuple[str, ...] = ()
    #: artifacts written (unit scope: for the task's own unit)
    outputs: Tuple[str, ...] = ()
    #: participates in the content-addressed summary cache
    cacheable: bool = False
    #: supports the process executor (export/run_remote/merge_remote)
    distributable: bool = False

    def run(self, ctx: "ProgramContext", unit: Optional[str] = None) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # process-executor protocol (distributable passes only)
    # ------------------------------------------------------------------
    # Under ``--executor process`` the manager never calls ``run`` for a
    # unit-scope task; it ships a picklable task built by ``export_task``
    # to a pool worker, the worker executes ``run_remote`` against its
    # own rebuilt engine, and the parent folds the returned payload back
    # with ``merge_remote``.  The contract mirrors the cache path: a
    # payload must round-trip through pickle into values that rebind to
    # the parent's parse bit-for-bit, so executor choice is invisible in
    # every artifact.  Degradation signals (taint, degraded flags) must
    # travel inside the payload — soundness may not be lost at the
    # process boundary.

    def export_task(self, ctx: "ProgramContext", unit: str) -> dict:
        """The picklable inputs of one remote ``(self, unit)`` task."""
        raise NotImplementedError

    def run_remote(self, engine, unit: str, task: dict) -> dict:
        """Execute in the worker against its engine; return a payload."""
        raise NotImplementedError

    def merge_remote(self, ctx: "ProgramContext", unit: str, payload: dict) -> None:
        """Fold a worker payload into the parent context (must leave the
        store exactly as a local ``run`` would have)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able declaration record (``--explain-pipeline``)."""
        return {
            "name": self.name,
            "scope": self.scope,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "cacheable": self.cacheable,
        }

    def __repr__(self) -> str:
        return (
            f"<Pass {self.name} {self.scope} "
            f"{list(self.inputs)} -> {list(self.outputs)}>"
        )
