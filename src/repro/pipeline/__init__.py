"""The unified pass pipeline.

One explicit compile flow replaces the legacy monolithic driver:
:func:`run_pipeline` builds a
:class:`~repro.pipeline.context.ProgramContext`, schedules the passes of
:func:`~repro.pipeline.passes.analysis_passes` under a
:class:`~repro.pipeline.manager.PassManager`, and returns the context —
with ``jobs > 1`` running independent callgraph subtrees concurrently,
byte-identical to the serial (and legacy) results.

The pipeline is the default.  ``REPRO_PIPELINE=0`` (or
:func:`set_pipeline`) routes the public entry points back through the
legacy monolithic path, which is kept verbatim as the pinned reference
the integration tests compare against.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import List, Optional, Sequence, Tuple

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.pipeline import executor as _executor_mod
from repro.pipeline.base import (
    CALLEES_SUFFIX,
    PROGRAM_SCOPE,
    ROOT_ARTIFACT,
    UNIT_SCOPE,
    Pass,
)
from repro.pipeline.context import MissingArtifact, ProgramContext
from repro.pipeline.executor import (
    EXECUTORS,
    executor_kind,
    resolve_jobs,
    set_executor,
)
from repro.pipeline.manager import PassManager, PipelineWiringError
from repro.pipeline.passes import (
    DecidePass,
    EnclosePass,
    FrontendPass,
    PlanPass,
    ScalarPropPass,
    SummarizePass,
    TwoVersionPass,
    analysis_passes,
)

__all__ = [
    "CALLEES_SUFFIX",
    "EXECUTORS",
    "PROGRAM_SCOPE",
    "ROOT_ARTIFACT",
    "UNIT_SCOPE",
    "DecidePass",
    "EnclosePass",
    "FrontendPass",
    "MissingArtifact",
    "Pass",
    "PassManager",
    "PipelineWiringError",
    "PlanPass",
    "ProgramContext",
    "ScalarPropPass",
    "SummarizePass",
    "TwoVersionPass",
    "analysis_passes",
    "executor_kind",
    "pipeline_enabled",
    "resolve_batch_chunk",
    "resolve_jobs",
    "run_pipeline",
    "run_pipeline_batch",
    "set_executor",
    "set_pipeline",
]

# ----------------------------------------------------------------------
# pipeline switch
# ----------------------------------------------------------------------
# Like the predicate-oracle switch: environment-controlled with a
# programmatic override, so the integration tests can pin the pipeline
# and legacy paths against each other in one process.

_pipeline: Optional[bool] = None


def pipeline_enabled() -> bool:
    """Is the pass pipeline (vs the legacy monolithic path) enabled?"""
    global _pipeline
    if _pipeline is None:
        raw = os.environ.get("REPRO_PIPELINE", "1").strip().lower()
        _pipeline = raw not in ("0", "off", "false", "no")
    return _pipeline


def set_pipeline(enabled: Optional[bool]) -> None:
    """Force the pipeline on/off; ``None`` re-reads the environment."""
    global _pipeline
    if _pipeline != enabled:
        perf.bump_epoch()  # knob change invalidates warm fleet state
    _pipeline = enabled


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_pipeline(
    program,
    opts: Optional[AnalysisOptions] = None,
    cache=None,
    jobs: Optional[int] = 1,
    goals: Sequence[str] = ("result",),
    explain: bool = False,
    executor: Optional[str] = None,
) -> ProgramContext:
    """Run the compile flow for *program* up to *goals*.

    Returns the :class:`ProgramContext`; read artifacts off it
    (``ctx.get("result")``, ``ctx.get("transformed")``, …).  With a
    cache attached the program-level fast path is honored first: an
    unchanged program loads its whole result in one rebind, scheduling
    nothing upstream; a fresh, undegraded run stores the program payload
    back, exactly as the legacy driver did.

    *jobs* ``None`` defers to ``REPRO_JOBS`` (default 1); *executor*
    ``None`` defers to ``REPRO_EXECUTOR`` (default ``"thread"``).  Every
    combination produces byte-identical artifacts — the executor only
    changes *where* unit tasks run (see ``docs/EXECUTION.md``).
    """
    from repro.partests.driver import ParallelizationDriver, _decision_rows
    from repro.service.cache import program_key

    start = time.perf_counter()
    opts = opts or AnalysisOptions.predicated()
    ctx = ProgramContext(program, opts, cache=cache)
    goals = tuple(goals)

    pkey = None
    fresh_result = False
    if cache is not None and "result" in goals:
        pkey = program_key(program, opts)
        payload = cache.load(pkey, "program")
        if payload is not None:
            with perf.phase("driver.rebind"):
                rebound = ParallelizationDriver(
                    program, opts, cache=cache
                )._rebind_program(payload)
            if rebound is not None:
                ctx.put("result", rebound)
                ctx.put("degraded", False)

    manager = PassManager(analysis_passes())
    fresh_result = not ctx.has("result")
    manager.run(ctx, jobs=jobs, goals=goals, explain=explain, executor=executor)

    if ctx.has("result"):
        result = ctx.get("result")
        result.analysis_seconds = time.perf_counter() - start
        if (
            fresh_result
            and cache is not None
            and pkey is not None
            and ctx.has("engine")
            and not ctx.degraded
            and not ctx.engine.tainted_units
        ):
            cache.store(
                pkey,
                "program",
                [
                    (name, _decision_rows(ctx.get("decisions", name)))
                    for name in ctx.unit_names()
                ],
            )
    return ctx


# ----------------------------------------------------------------------
# whole-suite fan-out
# ----------------------------------------------------------------------
def resolve_batch_chunk(
    chunk: Optional[int], n_programs: int, jobs: int
) -> int:
    """Programs per pool task: explicit *chunk*, else ``REPRO_BATCH_CHUNK``,
    else sized so each worker sees ~4 chunks (load balance) without any
    chunk growing past 32 programs (latency to first merged result)."""
    if chunk is None:
        raw = os.environ.get("REPRO_BATCH_CHUNK", "").strip()
        if raw:
            try:
                chunk = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_BATCH_CHUNK={raw!r} is not an integer"
                ) from None
    if chunk is None:
        chunk = min(32, -(-n_programs // (jobs * 4)))
    return max(1, int(chunk))


def run_pipeline_batch(
    programs: Sequence,
    opts: Optional[AnalysisOptions] = None,
    cache=None,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    chunk: Optional[int] = None,
) -> List:
    """Analyze many independent programs, returning their
    :class:`~repro.partests.driver.ProgramResult` objects **in input
    order**.

    Distinct programs share no artifacts, so they are the coarsest
    independent "subtrees" the executor can schedule — this is where the
    process executor pays off even for single-procedure programs, whose
    intra-program task graph has nothing to overlap.  Under
    ``executor="process"`` the batch is coalesced into *chunks* of
    consecutive programs (*chunk* per pool task; ``REPRO_BATCH_CHUNK``
    or an auto size otherwise — see :func:`resolve_batch_chunk`), so a
    stream of tiny programs pays one pickle/queue round trip per chunk
    instead of per program.  Each chunk runs its programs' full
    pipelines serially inside a pool worker — on the worker's warm
    substrate, when the fleet is warm — and ships back per-program
    decision rows (the exact payload shape the program-level cache
    stores); the parent rebinds them onto its own parses in input
    order, so results are byte-identical to a serial loop *and* to any
    other chunking.  A degraded (budget-tripped) worker result is
    rebound as-is — conservative and, as always, never written to any
    cache.

    The thread executor (and ``jobs=1``) analyzes locally; thread
    workers only overlap cache/IO waits, exactly like ``--jobs`` inside
    one program.
    """
    from repro.partests.driver import ParallelizationDriver

    opts = opts or AnalysisOptions.predicated()
    jobs = resolve_jobs(jobs)
    kind = executor_kind(executor)
    programs = list(programs)

    def local(program):
        return run_pipeline(
            program, opts, cache=cache, jobs=1, executor="thread"
        ).get("result")

    if jobs <= 1 or len(programs) <= 1:
        return [local(p) for p in programs]
    if kind == "thread":
        from concurrent.futures import ThreadPoolExecutor

        from repro.service.budgets import active_budget, adopt_scope

        # budgets are thread-local; batch worker threads adopt the
        # caller's scope so the whole batch charges one request budget
        scope = active_budget()

        def local_scoped(program):
            with adopt_scope(scope):
                return local(program)

        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="pipeline-batch"
        ) as pool:
            return list(pool.map(local_scoped, programs))

    from repro.linalg.fourier_motzkin import replay_fallback_warnings
    from repro.service.budgets import suspended

    chunk = resolve_batch_chunk(chunk, len(programs), jobs)
    chunks = [
        programs[i : i + chunk] for i in range(0, len(programs), chunk)
    ]
    pool = _executor_mod.process_pool(jobs)
    cache_root = str(cache.root) if cache is not None else None
    epoch = perf.epoch()
    futures = []
    for group in chunks:
        perf.bump("pipeline.executor.batch_programs", len(group))
        perf.bump("pipeline.executor.chunks")
        perf.bump("pipeline.executor.tasks")
        blob = pickle.dumps(group, protocol=pickle.HIGHEST_PROTOCOL)
        futures.append(
            pool.submit(
                _executor_mod.run_remote_chunk,
                blob,
                opts,
                cache_root,
                _executor_mod.remaining_budget(),
                epoch,
            )
        )
    results = []
    try:
        for group, fut in zip(chunks, futures):
            out = _executor_mod.load_result(fut.result())
            _executor_mod.absorb_worker(out["pid"], out["snapshot"])
            replay_fallback_warnings(out["warnings"])
            for program, prog_out in zip(group, out["programs"]):
                # rebinding a completed worker result may not re-trip
                # the (possibly exhausted) request budget
                with suspended(), perf.phase("driver.rebind"):
                    result = ParallelizationDriver(
                        program, opts, cache=cache
                    )._rebind_program(prog_out["payload"])
                if result is None:
                    # same parse on both sides, so this cannot fail in
                    # practice; recompute locally (pure → identical)
                    perf.bump("pipeline.executor.fallback")
                    result = local(program)
                result.analysis_seconds = prog_out["seconds"]
                results.append(result)
    except BaseException:
        _executor_mod.shutdown_pool()
        raise
    return results
