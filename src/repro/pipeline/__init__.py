"""The unified pass pipeline.

One explicit compile flow replaces the legacy monolithic driver:
:func:`run_pipeline` builds a
:class:`~repro.pipeline.context.ProgramContext`, schedules the passes of
:func:`~repro.pipeline.passes.analysis_passes` under a
:class:`~repro.pipeline.manager.PassManager`, and returns the context —
with ``jobs > 1`` running independent callgraph subtrees concurrently,
byte-identical to the serial (and legacy) results.

The pipeline is the default.  ``REPRO_PIPELINE=0`` (or
:func:`set_pipeline`) routes the public entry points back through the
legacy monolithic path, which is kept verbatim as the pinned reference
the integration tests compare against.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence, Tuple

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.pipeline.base import (
    CALLEES_SUFFIX,
    PROGRAM_SCOPE,
    ROOT_ARTIFACT,
    UNIT_SCOPE,
    Pass,
)
from repro.pipeline.context import MissingArtifact, ProgramContext
from repro.pipeline.manager import PassManager, PipelineWiringError
from repro.pipeline.passes import (
    DecidePass,
    EnclosePass,
    FrontendPass,
    PlanPass,
    ScalarPropPass,
    SummarizePass,
    TwoVersionPass,
    analysis_passes,
)

__all__ = [
    "CALLEES_SUFFIX",
    "PROGRAM_SCOPE",
    "ROOT_ARTIFACT",
    "UNIT_SCOPE",
    "DecidePass",
    "EnclosePass",
    "FrontendPass",
    "MissingArtifact",
    "Pass",
    "PassManager",
    "PipelineWiringError",
    "PlanPass",
    "ProgramContext",
    "ScalarPropPass",
    "SummarizePass",
    "TwoVersionPass",
    "analysis_passes",
    "pipeline_enabled",
    "run_pipeline",
    "set_pipeline",
]

# ----------------------------------------------------------------------
# pipeline switch
# ----------------------------------------------------------------------
# Like the predicate-oracle switch: environment-controlled with a
# programmatic override, so the integration tests can pin the pipeline
# and legacy paths against each other in one process.

_pipeline: Optional[bool] = None


def pipeline_enabled() -> bool:
    """Is the pass pipeline (vs the legacy monolithic path) enabled?"""
    global _pipeline
    if _pipeline is None:
        raw = os.environ.get("REPRO_PIPELINE", "1").strip().lower()
        _pipeline = raw not in ("0", "off", "false", "no")
    return _pipeline


def set_pipeline(enabled: Optional[bool]) -> None:
    """Force the pipeline on/off; ``None`` re-reads the environment."""
    global _pipeline
    _pipeline = enabled


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_pipeline(
    program,
    opts: Optional[AnalysisOptions] = None,
    cache=None,
    jobs: int = 1,
    goals: Sequence[str] = ("result",),
    explain: bool = False,
) -> ProgramContext:
    """Run the compile flow for *program* up to *goals*.

    Returns the :class:`ProgramContext`; read artifacts off it
    (``ctx.get("result")``, ``ctx.get("transformed")``, …).  With a
    cache attached the program-level fast path is honored first: an
    unchanged program loads its whole result in one rebind, scheduling
    nothing upstream; a fresh, undegraded run stores the program payload
    back, exactly as the legacy driver did.
    """
    from repro.partests.driver import ParallelizationDriver, _decision_rows
    from repro.service.cache import program_key

    start = time.perf_counter()
    opts = opts or AnalysisOptions.predicated()
    ctx = ProgramContext(program, opts, cache=cache)
    goals = tuple(goals)

    pkey = None
    fresh_result = False
    if cache is not None and "result" in goals:
        pkey = program_key(program, opts)
        payload = cache.load(pkey, "program")
        if payload is not None:
            with perf.phase("driver.rebind"):
                rebound = ParallelizationDriver(
                    program, opts, cache=cache
                )._rebind_program(payload)
            if rebound is not None:
                ctx.put("result", rebound)
                ctx.put("degraded", False)

    manager = PassManager(analysis_passes())
    fresh_result = not ctx.has("result")
    manager.run(ctx, jobs=jobs, goals=goals, explain=explain)

    if ctx.has("result"):
        result = ctx.get("result")
        result.analysis_seconds = time.perf_counter() - start
        if (
            fresh_result
            and cache is not None
            and pkey is not None
            and ctx.has("engine")
            and not ctx.degraded
            and not ctx.engine.tainted_units
        ):
            cache.store(
                pkey,
                "program",
                [
                    (name, _decision_rows(ctx.get("decisions", name)))
                    for name in ctx.unit_names()
                ],
            )
    return ctx
