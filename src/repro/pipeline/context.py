"""The per-compilation result store shared by all passes.

A :class:`ProgramContext` owns every artifact one compile flow produces:
program-scoped artifacts under ``(name, None)`` and unit-scoped ones
under ``(name, unit)``.  Passes communicate *only* through the store, so
the :class:`~repro.pipeline.manager.PassManager` can schedule any two
tasks whose declared artifact keys do not depend on each other — in
particular, unit tasks over independent subtrees of the callgraph —
concurrently.  Writes are lock-guarded and keys are written exactly once
(per run), which makes the parallel merge deterministic: the final
store contents are a pure function of the inputs, never of scheduling
order.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.arraydf.options import AnalysisOptions


class MissingArtifact(KeyError):
    """A pass read an artifact nothing produced (wiring bug)."""

    def __init__(self, artifact: str, unit: Optional[str]) -> None:
        self.artifact = artifact
        self.unit = unit
        where = f" for unit {unit!r}" if unit is not None else ""
        super().__init__(f"artifact {artifact!r}{where} has not been produced")


class ProgramContext:
    """All analysis artifacts of one program's compile flow."""

    def __init__(
        self,
        source_program,
        opts: Optional[AnalysisOptions] = None,
        cache=None,
    ) -> None:
        #: the program exactly as parsed (pre scalar propagation)
        self.source_program = source_program
        self.opts = opts or AnalysisOptions.predicated()
        #: optional :class:`~repro.service.cache.SummaryCache`
        self.cache = cache
        self._store: Dict[Tuple[str, Optional[str]], Any] = {
            ("source_program", None): source_program
        }
        #: raw shipped payloads from process-executor tasks, kept beside
        #: the hydrated artifacts (see :meth:`stash_payload`)
        self._payloads: Dict[Tuple[str, Optional[str]], Any] = {}
        self._lock = threading.Lock()
        #: filled by ``PassManager.run(..., explain=True)``
        self.explain: Optional[dict] = None

    # ------------------------------------------------------------------
    # artifact store
    # ------------------------------------------------------------------
    def put(self, artifact: str, value: Any, unit: Optional[str] = None) -> None:
        """Store *value* under ``(artifact, unit)``.

        Re-writing a key is allowed only with the same value semantics
        (e.g. a shim preloading a cached result before the manager
        runs); passes themselves write each key once.
        """
        with self._lock:
            self._store[(artifact, unit)] = value

    def get(self, artifact: str, unit: Optional[str] = None) -> Any:
        try:
            return self._store[(artifact, unit)]
        except KeyError:
            raise MissingArtifact(artifact, unit) from None

    def has(self, artifact: str, unit: Optional[str] = None) -> bool:
        return (artifact, unit) in self._store

    def get_all(self, artifact: str, units: Iterable[str]) -> Dict[str, Any]:
        """The artifact for every unit of *units* (program-scope reads)."""
        return {u: self.get(artifact, u) for u in units}

    def stash_payload(
        self, artifact: str, unit: Optional[str], payload: Any
    ) -> None:
        """Keep the raw (picklable) payload a worker shipped for
        ``(artifact, unit)``.

        When the parent merges a process-executor result it *hydrates*
        the payload into interned values for the store (so local passes
        read normal artifacts), but later remote tasks that declare the
        artifact as an input can be fed the already-serialized payload
        verbatim instead of re-projecting the hydrated value.
        """
        with self._lock:
            self._payloads[(artifact, unit)] = payload

    def payload(self, artifact: str, unit: Optional[str] = None) -> Any:
        """The stashed shipped payload for ``(artifact, unit)``, or
        ``None`` when the artifact was produced locally."""
        return self._payloads.get((artifact, unit))

    def available_artifacts(self) -> Tuple[str, ...]:
        """The distinct artifact names currently present (for wiring
        validation against preloaded contexts)."""
        return tuple(sorted({name for name, _unit in self._store}))

    # ------------------------------------------------------------------
    # common views
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The :class:`~repro.arraydf.analysis.ArrayDataflow` engine."""
        return self.get("engine")

    @property
    def degraded(self) -> bool:
        """Did any pass degrade under a budget? (False before enclose.)"""
        return bool(self.has("degraded") and self.get("degraded"))

    def unit_names(self) -> Tuple[str, ...]:
        """Compilation units in program (parse) order."""
        return tuple(self.source_program.units)

    def __repr__(self) -> str:
        return (
            f"ProgramContext({self.source_program.main!r}, "
            f"{len(self._store)} artifacts)"
        )
