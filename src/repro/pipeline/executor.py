"""Executor selection and the shared process pool.

The pass pipeline can run its unit-scope task graph on two executors:

``thread`` (the default)
    tasks run on a :class:`~concurrent.futures.ThreadPoolExecutor`
    inside the parent process.  Cheap to start and shares every interned
    object, but the GIL serializes the Python-level analysis work, so
    ``--jobs N`` overlaps little beyond cache/IO waits.

``process``
    tasks run on a persistent, fork-preferred
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
    rebuilds the hash-consed substrate for the program once per run
    (``pipeline.executor.rebuilds``), hydrates shipped callee results
    back into interned values (``pipeline.executor.hydrations``), runs
    the ``(pass, unit)`` task under the shipped remaining budget, and
    returns a picklable payload the parent merges in deterministic parse
    order — byte-identical to the thread and serial schedules.

The choice is ``--executor {thread,process}`` on the CLI, the
``REPRO_EXECUTOR`` environment variable, or :func:`set_executor`
programmatically; ``REPRO_JOBS`` supplies a default job count where a
caller passes ``jobs=None``.

Observability: every worker result carries the worker's
:func:`repro.perf.snapshot`; the parent folds per-PID deltas into its
own tables (:func:`absorb_worker`) so ``--profile`` reports substrate
work done in the pool.  Captured Fourier–Motzkin fallback warnings ride
along and are replayed parent-side with the usual once-per-context
dedup (:func:`repro.linalg.fourier_motzkin.replay_fallback_warnings`),
so a warning is never repeated once per worker.

The pool is shared process-wide and torn down by
:func:`repro.perf.reset_all_caches` (cold-path benchmarking must not
reuse warm workers) and at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from dataclasses import dataclass
from itertools import count
from typing import Any, Dict, Optional

from repro import perf
from repro.service.budgets import Budget, active_budget

EXECUTORS = ("thread", "process")

#: executor tasks shipped to pool workers (pipeline tasks and batch
#: programs both count here)
perf.declare("pipeline.executor.tasks")
#: per-(worker, run) substrate rebuilds: a worker unpickled the program
#: and built a fresh ArrayDataflow engine
perf.declare("pipeline.executor.rebuilds")
#: shipped payloads hydrated back into interned summaries inside a
#: worker (the cache-hydration alternative to rebuilding from source)
perf.declare("pipeline.executor.hydrations")
#: process execution was requested but the region fell back to the
#: thread path (non-distributable pass, or pool unavailable)
perf.declare("pipeline.executor.fallback")
#: whole programs fanned out by run_pipeline_batch
perf.declare("pipeline.executor.batch_programs")


# ----------------------------------------------------------------------
# executor / jobs selection
# ----------------------------------------------------------------------
# Same shape as the REPRO_PACKED_KERNEL-style switches in repro.perf:
# environment-controlled with a programmatic override so tests can pin
# both executors against each other in one process.

_executor: Optional[str] = None


def executor_kind(explicit: Optional[str] = None) -> str:
    """The executor to use: *explicit* if given, else the environment."""
    if explicit is not None:
        if explicit not in EXECUTORS:
            raise ValueError(
                f"unknown executor {explicit!r} (expected one of {EXECUTORS})"
            )
        return explicit
    global _executor
    if _executor is None:
        raw = os.environ.get("REPRO_EXECUTOR", "thread").strip().lower()
        if raw not in EXECUTORS:
            raise ValueError(
                f"REPRO_EXECUTOR={raw!r} (expected one of {EXECUTORS})"
            )
        _executor = raw
    return _executor


def set_executor(kind: Optional[str]) -> None:
    """Force the executor kind; ``None`` re-reads the environment."""
    if kind is not None and kind not in EXECUTORS:
        raise ValueError(
            f"unknown executor {kind!r} (expected one of {EXECUTORS})"
        )
    global _executor
    _executor = kind


def resolve_jobs(jobs: Optional[int]) -> int:
    """An explicit job count, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(f"REPRO_JOBS={raw!r} is not an integer") from None
    return 1


# ----------------------------------------------------------------------
# the shared process pool
# ----------------------------------------------------------------------

_pool = None
_pool_jobs = 0
#: parent snapshot at pool creation — forked workers inherit these
#: counts, so it is the delta base for a worker's first shipped snapshot
_pool_base: Optional[Dict] = None
#: per-PID maximum of shipped worker snapshots (worker counters only
#: grow, so the max is the latest state already folded into the parent)
_pool_absorbed: Dict[int, Dict] = {}


def _worker_init() -> None:
    """Per-worker startup: drop state fork-inherited from the parent.

    A forked worker inherits the parent's *active* budget (possibly
    already exhausted) — left in place it would trip inside the pool's
    call-queue unpickling, before any task's ``budget_scope`` starts,
    killing the worker.  Tasks carry their own shipped remaining budget
    instead.  The engine memo is cleared for the same reason: worker
    engines must be built (and counted) worker-side.
    """
    from repro.service import budgets

    budgets.clear_thread_budget()
    _worker_engines.clear()


def process_pool(jobs: int):
    """The shared fork-preferred pool, (re)sized to *jobs* workers."""
    global _pool, _pool_jobs, _pool_base
    if _pool is not None and _pool_jobs != jobs:
        shutdown_pool()
    if _pool is None:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        _pool_base = perf.snapshot()
        _pool = ProcessPoolExecutor(
            max_workers=jobs, mp_context=ctx, initializer=_worker_init
        )
        _pool_jobs = jobs
        _pool_absorbed.clear()
    return _pool


def shutdown_pool() -> None:
    """Tear the pool down (reset hook, error recovery, interpreter exit)."""
    global _pool, _pool_jobs, _pool_base
    pool = _pool
    _pool = None
    _pool_jobs = 0
    _pool_base = None
    _pool_absorbed.clear()
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


perf.on_reset(shutdown_pool)
atexit.register(shutdown_pool)


def absorb_worker(pid: int, snap: Dict) -> None:
    """Fold one worker's shipped snapshot into the parent's perf tables.

    Incremental per PID: only the delta beyond what this worker already
    shipped (or inherited at fork) is absorbed, so task results may be
    processed in any completion order without double counting.
    """
    prev = _pool_absorbed.get(pid)
    if prev is None:
        prev = _pool_base or {}
    perf.absorb_snapshot(perf.snapshot_delta(snap, prev))
    _pool_absorbed[pid] = perf.snapshot_max(prev, snap) if prev else snap


def remaining_budget() -> Optional[Budget]:
    """The active budget's *remaining* allowance, as a picklable Budget.

    Taken at task-submit time and shipped with the task; the worker
    activates it for the task's dynamic extent.  Each task therefore
    charges its own ops/FM meters against the whole request's remaining
    allowance at submit — the same global bound as the thread path, with
    per-task (rather than shared-meter) accounting; exhaustion degrades
    identically (conservative summaries, loops demoted to serial) and
    degraded results are never cached or merged as clean.
    """
    active = active_budget()
    if active is None:
        return None
    b = active.budget
    wall = None
    if b.max_wall_s is not None:
        wall = max(0.0, b.max_wall_s - (time.perf_counter() - active.started))
    ops = None
    if b.max_ops is not None:
        ops = max(0, b.max_ops - (perf.total_ops() - active.ops_base))
    fm = None
    if b.max_fm_constraints is not None:
        fm = max(0, b.max_fm_constraints - active.fm_spent)
    return Budget(max_wall_s=wall, max_ops=ops, max_fm_constraints=fm)


# ----------------------------------------------------------------------
# task shipping
# ----------------------------------------------------------------------

_run_nonce = count()


@dataclass(frozen=True)
class TaskHeader:
    """Everything a worker needs to (re)build the substrate for one run.

    ``engine_key`` includes a per-run nonce, so one scheduled region's
    tasks share a worker-side engine while distinct runs never see each
    other's mutable engine state (taint, unit keys).
    """

    engine_key: str
    program_blob: bytes
    opts: Any
    cache_root: Optional[str]


def make_header(program, opts, cache) -> TaskHeader:
    """Serialize *program* once for all of a run's tasks."""
    import hashlib

    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    key = (
        hashlib.sha256(blob).hexdigest()[:16] + f":{next(_run_nonce)}"
    )
    root = str(cache.root) if cache is not None else None
    return TaskHeader(key, blob, opts, root)


#: worker-side engines keyed by TaskHeader.engine_key (bounded: a
#: long-lived worker serving many runs drops the oldest engine)
_worker_engines: Dict[str, Any] = {}
_WORKER_ENGINE_MAX = 4


def _worker_engine(header: TaskHeader):
    engine = _worker_engines.get(header.engine_key)
    if engine is None:
        from repro.arraydf.analysis import ArrayDataflow
        from repro.service.cache import SummaryCache

        perf.bump("pipeline.executor.rebuilds")
        program = pickle.loads(header.program_blob)
        cache = (
            SummaryCache(header.cache_root) if header.cache_root else None
        )
        engine = ArrayDataflow(program, header.opts, cache=cache, propagated=True)
        while len(_worker_engines) >= _WORKER_ENGINE_MAX:
            _worker_engines.pop(next(iter(_worker_engines)))
        _worker_engines[header.engine_key] = engine
    return engine


def dump_task(task: Dict) -> bytes:
    """Parent-side pickling of a task payload, budget-suspended.

    Symmetric to :func:`load_result`: the bytes cross the pool's queue
    threads as an opaque blob, so no interning (and no budget
    checkpoint) can run outside the task's own ``budget_scope``.
    """
    from repro.service.budgets import suspended

    with suspended():
        return pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)


def load_result(blob: bytes) -> Dict:
    """Parent-side unpickling of a worker result, budget-suspended.

    Workers ship results as opaque pickle bytes rather than live
    objects: unpickling interned symbolic values re-runs interning (and
    its feasibility checks), which must happen neither on the pool's
    internal result-reader thread nor under the request's (possibly
    exhausted) budget — merging *completed* results may never re-trip
    it, mirroring :func:`repro.service.budgets.suspended` on the
    degradation paths.
    """
    from repro.service.budgets import suspended

    with suspended():
        return pickle.loads(blob)


def run_remote_task(
    header: TaskHeader, budget: Optional[Budget], p, unit: str, task_blob: bytes
) -> bytes:
    """Worker-side entry point for one distributed ``(pass, unit)`` task."""
    from repro.linalg.fourier_motzkin import capture_fallback_warnings
    from repro.service.budgets import budget_scope, suspended

    start = time.perf_counter()
    engine = _worker_engine(header)
    with suspended():
        task = pickle.loads(task_blob)
    with capture_fallback_warnings() as fm_warnings:
        with budget_scope(budget):
            with perf.phase(f"pass.{p.name}"):
                payload = p.run_remote(engine, unit, task)
    return pickle.dumps(
        {
            "pid": os.getpid(),
            "payload": payload,
            "seconds": time.perf_counter() - start,
            "warnings": fm_warnings,
            "snapshot": perf.snapshot(),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def run_remote_program(
    program_blob: bytes,
    opts,
    cache_root: Optional[str],
    budget: Optional[Budget],
) -> bytes:
    """Worker-side entry point for one whole-program batch task.

    Runs the full pipeline serially inside the worker and ships the
    program's decision rows (the same payload shape the program-level
    cache stores), which the parent rebinds onto its own parse.
    """
    from repro.linalg.fourier_motzkin import capture_fallback_warnings
    from repro.partests.driver import _decision_rows
    from repro.pipeline import run_pipeline
    from repro.service.budgets import budget_scope
    from repro.service.cache import SummaryCache

    start = time.perf_counter()
    program = pickle.loads(program_blob)
    cache = SummaryCache(cache_root) if cache_root else None
    with capture_fallback_warnings() as fm_warnings:
        with budget_scope(budget):
            ctx = run_pipeline(program, opts, cache=cache, jobs=1)
    result = ctx.get("result")
    payload = [
        (name, _decision_rows([l for l in result.loops if l.unit == name]))
        for name in ctx.unit_names()
    ]
    return pickle.dumps(
        {
            "pid": os.getpid(),
            "payload": payload,
            "degraded": ctx.degraded,
            "seconds": time.perf_counter() - start,
            "warnings": fm_warnings,
            "snapshot": perf.snapshot(),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
