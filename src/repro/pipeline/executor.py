"""Executor selection and the shared process pool.

The pass pipeline can run its unit-scope task graph on two executors:

``thread`` (the default)
    tasks run on a :class:`~concurrent.futures.ThreadPoolExecutor`
    inside the parent process.  Cheap to start and shares every interned
    object, but the GIL serializes the Python-level analysis work, so
    ``--jobs N`` overlaps little beyond cache/IO waits.

``process``
    tasks run on a persistent, fork-preferred
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
    builds the hash-consed substrate for a program it has not seen
    (``pipeline.executor.builds``) and — under the warm fleet
    (``REPRO_WARM_FLEET``, the default) — keeps it, with the memo
    tables, alive across runs within a fleet epoch
    (``pipeline.executor.reuses``; epoch invalidation and taint
    eviction force ``.rebuilds``).  It hydrates shipped callee results
    back into interned values (``pipeline.executor.hydrations``), runs
    the ``(pass, unit)`` task under the shipped remaining budget, and
    returns a picklable payload the parent merges in deterministic parse
    order — byte-identical to the thread and serial schedules.

The choice is ``--executor {thread,process}`` on the CLI, the
``REPRO_EXECUTOR`` environment variable, or :func:`set_executor`
programmatically; ``REPRO_JOBS`` supplies a default job count where a
caller passes ``jobs=None``.

Observability: every worker result carries the worker's
:func:`repro.perf.snapshot`; the parent folds per-PID deltas into its
own tables (:func:`absorb_worker`) so ``--profile`` reports substrate
work done in the pool.  Captured Fourier–Motzkin fallback warnings ride
along and are replayed parent-side with the usual once-per-context
dedup (:func:`repro.linalg.fourier_motzkin.replay_fallback_warnings`),
so a warning is never repeated once per worker.

The pool is shared process-wide and torn down by
:func:`repro.perf.reset_all_caches` (cold-path benchmarking must not
reuse warm workers) and at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from dataclasses import dataclass
from itertools import count
from typing import Any, Dict, Optional

from repro import perf
from repro.service.budgets import Budget, active_budget

EXECUTORS = ("thread", "process")

#: executor tasks shipped to pool workers (pipeline tasks and batch
#: chunks both count here)
perf.declare("pipeline.executor.tasks")
#: first-touch engine builds: a worker unpickled a program it had never
#: seen and built a fresh ArrayDataflow engine
perf.declare("pipeline.executor.builds")
#: invalidation-forced rebuilds: a worker rebuilt an engine for a
#: program it had already built once (epoch sync, taint eviction, or
#: LRU pressure dropped the warm engine)
perf.declare("pipeline.executor.rebuilds")
#: warm-fleet engine reuses: a task was served by an engine a previous
#: run of the same program/options left behind
perf.declare("pipeline.executor.reuses")
#: a worker dropped its warm state because a task arrived from a newer
#: fleet epoch (knob change or cache reset in the parent)
perf.declare("pipeline.executor.epoch_syncs")
#: shipped payloads hydrated back into interned summaries inside a
#: worker (the cache-hydration alternative to rebuilding from source)
perf.declare("pipeline.executor.hydrations")
#: process execution was requested but the region fell back to the
#: thread path (non-distributable pass, or pool unavailable)
perf.declare("pipeline.executor.fallback")
#: whole programs fanned out by run_pipeline_batch
perf.declare("pipeline.executor.batch_programs")
#: coalesced batch chunks shipped to the pool (one pickle/queue round
#: trip each; see run_remote_chunk)
perf.declare("pipeline.executor.chunks")


# ----------------------------------------------------------------------
# executor / jobs selection
# ----------------------------------------------------------------------
# Same shape as the REPRO_PACKED_KERNEL-style switches in repro.perf:
# environment-controlled with a programmatic override so tests can pin
# both executors against each other in one process.

_executor: Optional[str] = None


def executor_kind(explicit: Optional[str] = None) -> str:
    """The executor to use: *explicit* if given, else the environment."""
    if explicit is not None:
        if explicit not in EXECUTORS:
            raise ValueError(
                f"unknown executor {explicit!r} (expected one of {EXECUTORS})"
            )
        return explicit
    global _executor
    if _executor is None:
        raw = os.environ.get("REPRO_EXECUTOR", "thread").strip().lower()
        if raw not in EXECUTORS:
            raise ValueError(
                f"REPRO_EXECUTOR={raw!r} (expected one of {EXECUTORS})"
            )
        _executor = raw
    return _executor


def set_executor(kind: Optional[str]) -> None:
    """Force the executor kind; ``None`` re-reads the environment."""
    if kind is not None and kind not in EXECUTORS:
        raise ValueError(
            f"unknown executor {kind!r} (expected one of {EXECUTORS})"
        )
    global _executor
    _executor = kind


def resolve_jobs(jobs: Optional[int]) -> int:
    """An explicit job count, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(f"REPRO_JOBS={raw!r} is not an integer") from None
    return 1


# ----------------------------------------------------------------------
# the shared process pool
# ----------------------------------------------------------------------

_pool = None
_pool_jobs = 0
#: per-PID maximum of shipped worker snapshots (worker counters only
#: grow, so the max is the latest state already folded into the parent)
_pool_absorbed: Dict[int, Dict] = {}
#: worker-side: this process's snapshot at fork, so shipped snapshots
#: are deltas of the worker's own work only.  Captured in the worker's
#: initializer — not guessed parent-side at pool creation — because
#: under fork the workers spawn lazily during the submit loop, *after*
#: the parent has already bumped per-task counters for the work it is
#: submitting; a parent-side base would double count those bumps
_worker_snap_base: Optional[Dict] = None


def _worker_init() -> None:
    """Per-worker startup: drop state fork-inherited from the parent.

    A forked worker inherits the parent's *active* budget (possibly
    already exhausted) — left in place it would trip inside the pool's
    call-queue unpickling, before any task's ``budget_scope`` starts,
    killing the worker.  Tasks carry their own shipped remaining budget
    instead.  The engine memo is cleared for the same reason: worker
    engines must be built (and counted) worker-side.

    The worker also disowns the parent's pool handle: a later
    worker-side ``perf.reset_all_caches()`` (epoch sync) runs the
    ``shutdown_pool`` reset hook, which must not tear down the *parent's*
    fork-inherited executor object from inside a worker.  And it adopts
    the inherited :func:`perf.epoch` as the epoch its warm state is
    current for — under fork that state is a faithful copy of the parent
    at pool creation; under spawn both start at zero and cold.
    """
    global _pool, _pool_jobs, _worker_epoch, _worker_snap_base
    from repro.service import budgets

    budgets.clear_thread_budget()
    _worker_engines.clear()
    _pool = None
    _pool_jobs = 0
    _pool_absorbed.clear()
    _worker_epoch = perf.epoch()
    _worker_snap_base = perf.snapshot()


def process_pool(jobs: int):
    """The shared fork-preferred pool, (re)sized to *jobs* workers."""
    global _pool, _pool_jobs
    if _pool is not None and _pool_jobs != jobs:
        shutdown_pool()
    if _pool is None:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        _pool = ProcessPoolExecutor(
            max_workers=jobs, mp_context=ctx, initializer=_worker_init
        )
        _pool_jobs = jobs
        _pool_absorbed.clear()
    return _pool


def shutdown_pool() -> None:
    """Tear the pool down (reset hook, error recovery, interpreter exit)."""
    global _pool, _pool_jobs
    pool = _pool
    _pool = None
    _pool_jobs = 0
    _pool_absorbed.clear()
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


perf.on_reset(shutdown_pool)
atexit.register(shutdown_pool)


def absorb_worker(pid: int, snap: Dict) -> None:
    """Fold one worker's shipped snapshot into the parent's perf tables.

    Workers ship deltas from their own fork-time base (*snap* contains
    the worker's work only — see :func:`_ship_snapshot`).  Incremental
    per PID: only the delta beyond what this worker already shipped is
    absorbed, so task results may be processed in any completion order
    without double counting.
    """
    prev = _pool_absorbed.get(pid) or {}
    perf.absorb_snapshot(perf.snapshot_delta(snap, prev))
    _pool_absorbed[pid] = perf.snapshot_max(prev, snap) if prev else snap


def remaining_budget() -> Optional[Budget]:
    """The active budget's *remaining* allowance, as a picklable Budget.

    Taken at task-submit time and shipped with the task; the worker
    activates it for the task's dynamic extent.  Each task therefore
    charges its own ops/FM meters against the whole request's remaining
    allowance at submit — the same global bound as the thread path, with
    per-task (rather than shared-meter) accounting; exhaustion degrades
    identically (conservative summaries, loops demoted to serial) and
    degraded results are never cached or merged as clean.
    """
    active = active_budget()
    if active is None:
        return None
    b = active.budget
    wall = None
    if b.max_wall_s is not None:
        wall = max(0.0, b.max_wall_s - (time.perf_counter() - active.started))
    ops = None
    if b.max_ops is not None:
        ops = max(0, b.max_ops - (perf.total_ops() - active.ops_base))
    fm = None
    if b.max_fm_constraints is not None:
        fm = max(0, b.max_fm_constraints - active.fm_spent)
    return Budget(max_wall_s=wall, max_ops=ops, max_fm_constraints=fm)


# ----------------------------------------------------------------------
# task shipping
# ----------------------------------------------------------------------

_run_nonce = count()


@dataclass(frozen=True)
class TaskHeader:
    """Everything a worker needs to (re)build the substrate for one run.

    Under the warm fleet (``REPRO_WARM_FLEET``, the default)
    ``engine_key`` is a pure content hash of (program, options, cache
    root): two runs of the same inputs share a worker-side engine, so a
    fleet re-analyzing the same program pays the substrate build once
    per worker per *epoch* instead of once per run.  What made the
    per-run nonce necessary — mutable engine state leaking between runs
    — is handled by construction instead: degraded (tainted) engines
    are evicted after the task that degraded them, every other piece of
    engine state is a pure function of the key's content, and ``epoch``
    (the :func:`repro.perf.epoch` at submit) invalidates all warm state
    when any semantic knob changes.  With the warm fleet off the key
    keeps the per-run nonce, restoring the cold per-(worker, run)
    behavior byte for byte.
    """

    engine_key: str
    program_blob: bytes
    opts: Any
    cache_root: Optional[str]
    epoch: int = 0


def make_header(program, opts, cache) -> TaskHeader:
    """Serialize *program* once for all of a run's tasks."""
    import hashlib

    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    root = str(cache.root) if cache is not None else None
    h = hashlib.sha256(blob)
    h.update(pickle.dumps(opts, protocol=pickle.HIGHEST_PROTOCOL))
    h.update(repr(root).encode())
    if perf.warm_fleet_enabled():
        key = h.hexdigest()[:24]
    else:
        key = h.hexdigest()[:16] + f":{next(_run_nonce)}"
    return TaskHeader(key, blob, opts, root, perf.epoch())


#: worker-side engines keyed by TaskHeader.engine_key (bounded: a
#: long-lived worker serving many runs drops the oldest engine)
_worker_engines: Dict[str, Any] = {}
_WORKER_ENGINE_MAX = 4
#: content keys this worker has built an engine for at least once —
#: distinguishes first-touch builds from invalidation-forced rebuilds.
#: A plain set of short digests (bounded below), deliberately *not*
#: cleared on epoch sync: post-sync rebuilds are exactly the rebuilds
#: the counter split exists to expose.
_worker_built_keys: set = set()
_WORKER_BUILT_KEYS_MAX = 65536
#: the fleet epoch this worker's warm state (engines, memo/intern
#: tables) is current for; ``None`` only before the initializer ran
_worker_epoch: Optional[int] = None


def _sync_epoch(epoch: int) -> None:
    """Drop all warm state when a task arrives from a newer fleet epoch.

    The parent bumps :func:`repro.perf.epoch` on every semantic knob
    change and cache reset; shipping the epoch with each task (header or
    chunk) lets a long-lived worker notice and invalidate *everything* —
    cached engines and the full memo/intern substrate — before touching
    the task.  Within one epoch nothing is ever invalidated, which is
    the whole warm-fleet bargain.
    """
    global _worker_epoch
    if _worker_epoch == epoch:
        return
    _worker_engines.clear()
    perf.reset_all_caches()
    _worker_epoch = epoch
    perf.bump("pipeline.executor.epoch_syncs")


def _evict_engine_if_tainted(engine_key: str, engine) -> None:
    """Never let a degraded engine survive into another run.

    A budget-tripped task leaves conservative (tainted) summaries in the
    engine's mutable state; under content keys a later run with a looser
    budget would find them in ``engine.units`` and skip recomputation —
    serving degraded rows as clean.  Evicting on taint keeps the
    byte-identity contract: degraded state is never cached, anywhere.
    """
    if engine.tainted_units and _worker_engines.get(engine_key) is engine:
        del _worker_engines[engine_key]


def _worker_engine(header: TaskHeader):
    engine = _worker_engines.get(header.engine_key)
    if engine is not None and not engine.tainted_units:
        perf.bump("pipeline.executor.reuses")
        return engine
    from repro.arraydf.analysis import ArrayDataflow
    from repro.service.cache import SummaryCache

    if header.engine_key in _worker_built_keys:
        perf.bump("pipeline.executor.rebuilds")
    else:
        perf.bump("pipeline.executor.builds")
        if len(_worker_built_keys) >= _WORKER_BUILT_KEYS_MAX:
            _worker_built_keys.clear()
        _worker_built_keys.add(header.engine_key)
    program = pickle.loads(header.program_blob)
    cache = (
        SummaryCache(header.cache_root) if header.cache_root else None
    )
    engine = ArrayDataflow(program, header.opts, cache=cache, propagated=True)
    while len(_worker_engines) >= _WORKER_ENGINE_MAX:
        _worker_engines.pop(next(iter(_worker_engines)))
    _worker_engines[header.engine_key] = engine
    return engine


def _ship_snapshot() -> Dict:
    """The perf snapshot a worker ships with a result: its own work only.

    Deltas against the fork-time base captured by :func:`_worker_init`,
    so fork-inherited parent counters never ride back and get absorbed
    twice.  (After a worker-side epoch sync the memo hit/miss statistics
    restart from zero and clamp away in the delta — cache *statistics*
    under-report across a sync; counters are never reset and stay exact.)
    """
    return perf.snapshot_delta(perf.snapshot(), _worker_snap_base or {})


def dump_task(task: Dict) -> bytes:
    """Parent-side pickling of a task payload, budget-suspended.

    Symmetric to :func:`load_result`: the bytes cross the pool's queue
    threads as an opaque blob, so no interning (and no budget
    checkpoint) can run outside the task's own ``budget_scope``.
    """
    from repro.service.budgets import suspended

    with suspended():
        return pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)


def load_result(blob: bytes) -> Dict:
    """Parent-side unpickling of a worker result, budget-suspended.

    Workers ship results as opaque pickle bytes rather than live
    objects: unpickling interned symbolic values re-runs interning (and
    its feasibility checks), which must happen neither on the pool's
    internal result-reader thread nor under the request's (possibly
    exhausted) budget — merging *completed* results may never re-trip
    it, mirroring :func:`repro.service.budgets.suspended` on the
    degradation paths.
    """
    from repro.service.budgets import suspended

    with suspended():
        return pickle.loads(blob)


def run_remote_task(
    header: TaskHeader, budget: Optional[Budget], p, unit: str, task_blob: bytes
) -> bytes:
    """Worker-side entry point for one distributed ``(pass, unit)`` task."""
    from repro.linalg.fourier_motzkin import capture_fallback_warnings
    from repro.service.budgets import budget_scope, suspended

    start = time.perf_counter()
    _sync_epoch(header.epoch)
    engine = _worker_engine(header)
    with suspended():
        task = pickle.loads(task_blob)
    with capture_fallback_warnings() as fm_warnings:
        with budget_scope(budget):
            with perf.phase(f"pass.{p.name}"):
                payload = p.run_remote(engine, unit, task)
    _evict_engine_if_tainted(header.engine_key, engine)
    perf.enforce_memo_caps()
    return pickle.dumps(
        {
            "pid": os.getpid(),
            "payload": payload,
            "seconds": time.perf_counter() - start,
            "warnings": fm_warnings,
            "snapshot": _ship_snapshot(),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def run_remote_chunk(
    chunk_blob: bytes,
    opts,
    cache_root: Optional[str],
    budget: Optional[Budget],
    epoch: int = 0,
) -> bytes:
    """Worker-side entry point for one batch *chunk* of whole programs.

    ``run_pipeline_batch`` coalesces many small programs into one pool
    task: *chunk_blob* unpickles to a list of programs, so a
    fuzz-farm-shaped stream of tiny jobs pays one pickle/queue round
    trip per chunk instead of per program.  Each program runs its full
    pipeline serially inside the worker — under its own scope of the
    shipped remaining *budget*, exactly as an unchunked submit would —
    on the worker's warm substrate (memo tables persist across programs
    and chunks within the fleet epoch).  Ships one per-program payload
    list back: decision rows in input order, each the same shape the
    program-level cache stores, which the parent rebinds onto its own
    parses.
    """
    from repro.linalg.fourier_motzkin import capture_fallback_warnings
    from repro.partests.driver import _decision_rows
    from repro.pipeline import run_pipeline
    from repro.service.budgets import budget_scope
    from repro.service.cache import SummaryCache

    _sync_epoch(epoch)
    programs = pickle.loads(chunk_blob)
    cache = SummaryCache(cache_root) if cache_root else None
    outs = []
    with capture_fallback_warnings() as fm_warnings:
        for program in programs:
            start = time.perf_counter()
            with budget_scope(budget):
                ctx = run_pipeline(program, opts, cache=cache, jobs=1)
            result = ctx.get("result")
            outs.append(
                {
                    "payload": [
                        (
                            name,
                            _decision_rows(
                                [l for l in result.loops if l.unit == name]
                            ),
                        )
                        for name in ctx.unit_names()
                    ],
                    "degraded": ctx.degraded,
                    "seconds": time.perf_counter() - start,
                }
            )
    perf.enforce_memo_caps()
    return pickle.dumps(
        {
            "pid": os.getpid(),
            "programs": outs,
            "warnings": fm_warnings,
            "snapshot": _ship_snapshot(),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
