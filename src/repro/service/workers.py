"""The worker fleet: threads draining the job queue through the pipeline.

A :class:`WorkerFleet` owns N daemon threads.  Each thread loops: claim
the next job from the :class:`~repro.service.queue.JobQueue` (the
atomic claim link arbitrates, so several fleets — even in different
processes — may share one queue), execute it through
:func:`repro.service.jobs.execute_job`, and record the receipt + result
via :meth:`~repro.service.queue.JobQueue.finish`.

Worker threads are where the thread-local budget design pays off: every
job activates *its own* budget scope in its worker's thread, so a fleet
runs many budgeted jobs concurrently without one job's spend metering
another's.  Real multicore throughput comes from *under* the workers:
with ``pipeline_executor="process"`` each job fans its independent
callgraph subtrees over the shared worker-process pool, so even a
GIL-bound fleet thread drives full cores.  All workers share the
process-wide summary cache — a long-lived fleet warms it monotonically.

Shutdown is **graceful drain** (the SIGTERM contract): workers stop
*claiming* immediately but finish the jobs they are running, so no job
is ever abandoned mid-flight by an orderly shutdown.  A crash (kill -9)
leaves an orphaned claim instead, which the queue's recovery re-enqueues
on restart — exactly once, never lost.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro import perf
from repro.service.jobs import execute_job
from repro.service.queue import JobQueue

perf.declare("worker.jobs")
perf.declare("worker.idle_waits")


class WorkerFleet:
    """N worker threads draining one job queue.

    *pipeline_jobs* / *pipeline_executor* configure the per-job pass
    pipeline fan-out (``--executor process`` puts real cores under each
    job); they never change any answer — the pipeline is byte-identical
    for every executor and job count.
    """

    def __init__(
        self,
        queue: JobQueue,
        workers: int = 1,
        pipeline_jobs: Optional[int] = 1,
        pipeline_executor: Optional[str] = None,
        idle_wait_s: float = 0.5,
        claim_chunk_limit: int = 8,
    ) -> None:
        self.queue = queue
        self.workers = max(1, int(workers))
        self.pipeline_jobs = pipeline_jobs
        self.pipeline_executor = pipeline_executor
        self.idle_wait_s = idle_wait_s
        self.claim_chunk_limit = max(1, int(claim_chunk_limit))
        self._threads: list = []
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._busy: Dict[str, Optional[str]] = {}  # worker name -> job id
        self._completed = 0
        self._busy_s = 0.0
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "WorkerFleet":
        if self._threads:
            raise RuntimeError("fleet already started")
        self._started_at = time.monotonic()
        for i in range(self.workers):
            name = f"worker-{i}"
            self._busy[name] = None
            t = threading.Thread(
                target=self._run, name=name, args=(name,), daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()

    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Stop claiming new jobs; running jobs keep going (SIGTERM)."""
        self._draining.set()
        self.queue.kick()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop claiming, wait for running jobs.

        Returns ``True`` when every worker exited within *timeout*.
        """
        self.request_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            t.join(remaining)
        return not any(t.is_alive() for t in self._threads)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # ------------------------------------------------------------------
    def _claim_limit(self) -> int:
        """Jobs to claim in one go: chunky under a backlog, polite when
        the queue is shallow.

        Dividing the visible depth across the fleet keeps a deep
        batch-submitted backlog from being claimed whole by whichever
        worker scans first (the claimed = running contract means claimed
        jobs ride out a drain), while a fuzz-farm-shaped stream still
        amortizes claim/journal overhead across up to
        ``claim_chunk_limit`` jobs per scan.
        """
        if self.claim_chunk_limit <= 1:
            return 1
        depth = self.queue.depth()
        return max(1, min(self.claim_chunk_limit, depth // self.workers))

    def _run(self, name: str) -> None:
        gen = None
        while not self._draining.is_set():
            if gen is None:
                gen = self.queue.submit_generation()
            jobs = self.queue.claim_chunk(owner=name, limit=self._claim_limit())
            if not jobs:
                perf.bump("worker.idle_waits")
                # gen was read before the empty scan: a submit that
                # raced the scan returns the park immediately
                gen = self.queue.wait_for_submit(self.idle_wait_s, gen)
                continue
            gen = None
            # every claimed job runs, even if a drain begins mid-chunk:
            # claimed means running, and an orderly shutdown never
            # abandons a running job
            for job in jobs:
                started = time.monotonic()
                with self._lock:
                    self._busy[name] = job.id
                try:
                    response, receipt = execute_job(
                        job,
                        worker=name,
                        jobs=self.pipeline_jobs,
                        executor=self.pipeline_executor,
                    )
                except BaseException:
                    # execute_job never raises by contract; if the
                    # impossible happens, release the claim for recovery
                    # rather than wedging the job as running-forever
                    with self._lock:
                        self._busy[name] = None
                    raise
                self.queue.finish(job.id, response, receipt)
                perf.bump("worker.jobs")
                with self._lock:
                    self._busy[name] = None
                    self._completed += 1
                    self._busy_s += time.monotonic() - started

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Fleet-shape snapshot for ``GET /v1/stats``.

        ``utilization`` is cumulative busy-seconds over cumulative
        fleet-seconds — the long-run fraction of worker capacity spent
        executing jobs.
        """
        with self._lock:
            busy = {k: v for k, v in self._busy.items() if v is not None}
            completed = self._completed
            busy_s = self._busy_s
        elapsed = (
            (time.monotonic() - self._started_at)
            if self._started_at is not None
            else 0.0
        )
        capacity_s = elapsed * self.workers
        return {
            "workers": self.workers,
            "busy": len(busy),
            "running": sorted(busy.values()),
            "completed": completed,
            "draining": self.draining,
            "utilization": round(busy_s / capacity_s, 4) if capacity_s else 0.0,
        }
