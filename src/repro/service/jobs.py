"""Job execution core: one queued job in, one response + receipt out.

This is the single code path every front end funnels through — the
JSON-lines loop (``serve --stdio``), the HTTP front door (``serve
--http``) and the worker fleet all call :func:`execute_job`.  Two job
kinds exist:

``analyze``
    The body is exactly today's JSON-lines request object (``source`` /
    ``file``, ``options``, ``budget``, ``report``, echoed ``id``); the
    response is byte-identical to the pre-queue server's.  The analysis
    runs under the job's budget in the *calling thread's* budget scope
    (budgets are thread-local, so a fleet runs many budgeted jobs
    concurrently without cross-metering), degrades soundly on
    exhaustion, and shares the process-wide summary cache.

``experiment``
    The body names a paper table/figure (``which`` ∈ fig1 / tab1 / tab2
    / tab3 / figs / figo) plus an optional per-job ``jobs`` fan-out; the
    response carries the formatted text the CLI would print.

:func:`execute_job` never raises: a bad request becomes an ``"ok":
false`` response (and a *failed* receipt) — one poisoned job never
takes down a worker.  Every execution produces a receipt
(:mod:`repro.service.receipts`) recording inputs, knobs, budgets,
degradation and cost.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro import perf
from repro.service import receipts
from repro.service.budgets import Budget, budget_scope

for _name in (
    "job.analyze",
    "job.experiment",
    "job.done",
    "job.failed",
    "job.degraded",
    "job.receipt",
):
    perf.declare(_name)

#: experiment ids an ``experiment`` job may name (module resolved lazily)
EXPERIMENTS = ("fig1", "tab1", "tab2", "tab3", "figs", "figo")


def _options_named(name: str):
    from repro.arraydf.options import AnalysisOptions

    if name == "base":
        return AnalysisOptions.base()
    if name == "predicated":
        return AnalysisOptions.predicated()
    raise ValueError(f"unknown options {name!r} (use 'predicated' or 'base')")


def _experiment_module(which: str):
    from repro.experiments import (
        fig1_examples,
        fig_overhead,
        fig_speedups,
        table1_loops,
        table2_programs,
        table3_categories,
    )

    return {
        "fig1": fig1_examples,
        "tab1": table1_loops,
        "tab2": table2_programs,
        "tab3": table3_categories,
        "figs": fig_speedups,
        "figo": fig_overhead,
    }[which]


# ----------------------------------------------------------------------
# analyze
# ----------------------------------------------------------------------
def run_analyze(
    body: Dict,
    jobs: Optional[int] = 1,
    executor: Optional[str] = None,
) -> Tuple[Dict, Dict]:
    """Run one analysis request; returns ``(response, extras)``.

    The response dict is the pinned JSON-lines wire format (see
    :mod:`repro.service.server`); *extras* carries what the receipt
    needs beyond the response (parsed program, options, budget, trips).
    *jobs*/*executor* configure the pass pipeline underneath — output is
    byte-identical for every combination, so the fleet can fan units
    out over worker processes without changing any answer.
    """
    rid = body.get("id")
    extras: Dict = {
        "options_name": None,
        "opts": None,
        "program": None,
        "budget": None,
        "trips": {},
        "degraded": False,
    }
    try:
        source = body.get("source")
        if source is None:
            path = body.get("file")
            if path is None:
                raise ValueError("request needs 'source' or 'file'")
            with open(path) as f:
                source = f.read()
        options_name = body.get("options", "predicated")
        opts = _options_named(options_name)
        extras["options_name"], extras["opts"] = options_name, opts
        budget = Budget.from_dict(body.get("budget"))
        extras["budget"] = budget

        from repro.lang.parser import parse_program
        from repro.partests.driver import ParallelizationDriver
        from repro.service.cache import default_cache

        program = parse_program(source)
        extras["program"] = program
        driver = ParallelizationDriver(
            program,
            opts,
            cache=default_cache(),
            jobs=jobs,
            executor=executor,
        )
        with budget_scope(budget) as scope:
            result = driver.run()
        if scope is not None:
            extras["trips"] = dict(scope.trips)
        extras["degraded"] = driver.degraded

        loops = [
            {
                "label": l.label,
                "unit": l.unit,
                "status": l.status,
                "condition": (
                    None
                    if l.condition is None or l.condition.is_true()
                    else str(l.condition)
                ),
                "runtime_test": l.runtime_test,
                "reason": l.reason,
                "enclosed": l.enclosed,
            }
            for l in result.loops
        ]
        resp: Dict = {
            "id": rid,
            "ok": True,
            "program": program.main,
            "degraded": driver.degraded,
            "loops": loops,
        }
        if body.get("report"):
            from repro.codegen.report import format_report

            resp["report"] = format_report(result)
        return resp, extras
    except Exception as exc:  # one bad request must not kill the worker
        return (
            {"id": rid, "ok": False, "error": f"{type(exc).__name__}: {exc}"},
            extras,
        )


# ----------------------------------------------------------------------
# experiment
# ----------------------------------------------------------------------
def run_experiment(body: Dict) -> Tuple[Dict, Dict]:
    """Run one experiment request; returns ``(response, extras)``."""
    rid = body.get("id")
    extras: Dict = {"which": None, "budget": None, "trips": {}, "degraded": False}
    try:
        which = body.get("which")
        if which not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {which!r} "
                f"(use one of {', '.join(EXPERIMENTS)})"
            )
        extras["which"] = which
        jobs = int(body.get("jobs", 1))
        budget = Budget.from_dict(body.get("budget"))
        extras["budget"] = budget
        with budget_scope(budget) as scope:
            output = _experiment_module(which).run(jobs=jobs).format()
        if scope is not None:
            extras["trips"] = dict(scope.trips)
            extras["degraded"] = scope.degraded
        return (
            {"id": rid, "ok": True, "which": which, "output": output},
            extras,
        )
    except Exception as exc:
        return (
            {"id": rid, "ok": False, "error": f"{type(exc).__name__}: {exc}"},
            extras,
        )


# ----------------------------------------------------------------------
# the one entry point
# ----------------------------------------------------------------------
def execute_job(
    job,
    worker: str = "",
    jobs: Optional[int] = 1,
    executor: Optional[str] = None,
) -> Tuple[Dict, Dict]:
    """Execute one queued :class:`~repro.service.queue.Job`.

    Returns ``(response, receipt)`` and never raises.  *jobs* and
    *executor* are the fleet's pipeline configuration (how much
    intra-job fan-out each worker may use), not part of the request.
    """
    started = time.perf_counter()
    base = perf.snapshot()
    if job.kind == "experiment":
        perf.bump("job.experiment")
        resp, extras = run_experiment(job.body)
        inputs = receipts.experiment_inputs(extras.get("which"))
    else:
        perf.bump("job.analyze")
        resp, extras = run_analyze(job.body, jobs=jobs, executor=executor)
        program, opts = extras.get("program"), extras.get("opts")
        if program is not None and opts is not None:
            inputs = receipts.analyze_inputs(program, opts)
        else:
            inputs = receipts.empty_inputs()
    run_s = time.perf_counter() - started

    perf.bump("job.done" if resp.get("ok") else "job.failed")
    degraded = bool(extras.get("degraded"))
    if degraded:
        perf.bump("job.degraded")

    budget: Optional[Budget] = extras.get("budget")
    granted = {
        key: getattr(budget, key) if budget is not None else None
        for key in Budget.KEYS
    }
    result_summary: Dict = {
        "state": "done" if resp.get("ok") else "failed",
        "ok": bool(resp.get("ok")),
    }
    if resp.get("ok") and job.kind == "analyze":
        loops = resp.get("loops", [])
        result_summary["loops"] = len(loops)
        result_summary["parallel"] = sum(
            1 for l in loops if l["status"] in ("parallel", "runtime")
        )
    if not resp.get("ok"):
        result_summary["error"] = resp.get("error")

    queued_s = None
    if job.submitted_at is not None:
        queued_s = max(0.0, round(time.time() - run_s - job.submitted_at, 6))
    timings = {
        "wall_s": {"queued": queued_s, "run": round(run_s, 6)},
        "perf": perf.snapshot_delta(perf.snapshot(), base),
        "worker": worker,
        "finished_at": round(time.time(), 3),
    }

    receipt = receipts.build_receipt(
        job_id=job.id,
        kind=job.kind,
        priority=job.priority,
        inputs=inputs,
        knobs=receipts.knobs_in_effect(
            extras.get("options_name"), extras.get("opts"), executor, jobs or 1
        ),
        budget_granted=granted,
        degraded=degraded,
        trips=extras.get("trips", {}),
        result_summary=result_summary,
        timings=timings,
    )
    perf.bump("job.receipt")
    # job boundary: a long-lived fleet keeps memo tables warm across
    # jobs; trim the capped ones so that warmth stays bounded
    perf.enforce_memo_caps()
    return resp, receipt
