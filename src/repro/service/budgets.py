"""Per-request resource budgets and the degradation signal.

A :class:`Budget` bounds how much work one analysis request may spend:

``max_wall_s``
    wall-clock seconds for the whole request;
``max_ops``
    deterministic substrate operations (:func:`repro.perf.total_ops`
    delta) — the machine-independent cost measure FIGO uses;
``max_fm_constraints``
    cumulative Fourier–Motzkin work (bound-pair combinations charged by
    :func:`charge_fm` in :mod:`repro.linalg.fourier_motzkin`).

The substrate layers call :func:`checkpoint` / :func:`charge_fm` at
their entry points; when the active budget is exhausted they raise
:class:`BudgetExceeded`.  The analysis layers catch it at two
granularities and *degrade instead of failing*:

* :class:`~repro.arraydf.analysis.ArrayDataflow` demotes the procedure
  being analyzed to a conservative whole-array summary
  (:mod:`repro.service.degrade`);
* the parallelization driver demotes the loop being decided to
  ``serial`` ("not proven parallel").

Both demotions are sound — they only ever move answers toward "not
parallel" — and both bump a ``budget.*`` counter surfaced by
``--profile``.  A budget keeps raising while exhausted (checks are
cheap), so after the first trip every remaining unit/loop degrades
quickly rather than continuing to burn the request's time.

The module is intentionally light (stdlib + :mod:`repro.perf` only) so
the linear-algebra substrate can import it without cycles.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro import perf

perf.declare("budget.trip.wall")
perf.declare("budget.trip.ops")
perf.declare("budget.trip.fm")
perf.declare("budget.degraded_unit")
perf.declare("budget.degraded_loop")


class BudgetExceeded(RuntimeError):
    """A resource budget ran out; carriers catch this and degrade."""

    def __init__(self, kind: str, detail: str = "") -> None:
        self.kind = kind
        self.detail = detail
        message = f"{kind} budget exhausted"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass(frozen=True)
class Budget:
    """Resource limits for one analysis request (``None`` = unlimited)."""

    max_wall_s: Optional[float] = None
    max_ops: Optional[int] = None
    max_fm_constraints: Optional[int] = None

    @staticmethod
    def unlimited() -> "Budget":
        return Budget()

    #: the only keys a request's ``budget`` object may carry
    KEYS = ("max_wall_s", "max_ops", "max_fm_constraints")

    @staticmethod
    def from_dict(data: Optional[Dict]) -> "Budget":
        """Build from a request payload.

        Unknown keys are *rejected* (:class:`ValueError` naming the bad
        key) rather than silently ignored — a typo like ``max_walls``
        would otherwise grant an unlimited budget while the client
        believes one is in force.
        """
        if not data:
            return Budget()
        unknown = sorted(set(data) - set(Budget.KEYS))
        if unknown:
            raise ValueError(
                "unknown budget key(s): "
                + ", ".join(repr(k) for k in unknown)
                + " (allowed: " + ", ".join(Budget.KEYS) + ")"
            )
        return Budget(
            max_wall_s=data.get("max_wall_s"),
            max_ops=data.get("max_ops"),
            max_fm_constraints=data.get("max_fm_constraints"),
        )

    @property
    def is_unlimited(self) -> bool:
        return (
            self.max_wall_s is None
            and self.max_ops is None
            and self.max_fm_constraints is None
        )


class _ActiveBudget:
    """Book-keeping for the budget currently in scope."""

    __slots__ = ("budget", "started", "ops_base", "fm_spent", "trips")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.started = time.perf_counter()
        self.ops_base = perf.total_ops()
        self.fm_spent = 0
        self.trips: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _trip(self, kind: str, detail: str) -> None:
        first = kind not in self.trips
        self.trips[kind] = self.trips.get(kind, 0) + 1
        if first:
            perf.bump(f"budget.trip.{kind}")
        raise BudgetExceeded(kind, detail)

    def checkpoint(self) -> None:
        b = self.budget
        if b.max_wall_s is not None:
            used = time.perf_counter() - self.started
            if used > b.max_wall_s:
                self._trip("wall", f"{used:.3f}s > {b.max_wall_s}s")
        if b.max_ops is not None:
            used_ops = perf.total_ops() - self.ops_base
            if used_ops > b.max_ops:
                self._trip("ops", f"{used_ops} > {b.max_ops}")

    def charge_fm(self, amount: int) -> None:
        b = self.budget
        if b.max_fm_constraints is None:
            self.checkpoint()
            return
        self.fm_spent += amount
        if self.fm_spent > b.max_fm_constraints:
            self._trip(
                "fm", f"{self.fm_spent} > {b.max_fm_constraints} constraints"
            )
        self.checkpoint()

    @property
    def degraded(self) -> bool:
        return bool(self.trips)


#: the budget in scope for the current request, held **per thread**.
#: The worker fleet (:mod:`repro.service.workers`) runs several jobs
#: concurrently on threads, each under its own budget; a process-global
#: slot would let one job's budget meter another job's work.  Threads
#: *inside* one request (the pipeline's ``--jobs`` thread regions) share
#: the request's single :class:`_ActiveBudget` via :func:`adopt_scope`,
#: so charges still accumulate request-wide exactly as before.  Worker
#: *processes* activate their own scope from the shipped request payload.
_tls = threading.local()


def active_budget() -> Optional[_ActiveBudget]:
    """The calling thread's active budget book-keeping, or ``None``."""
    return getattr(_tls, "active", None)


def clear_thread_budget() -> None:
    """Drop any budget inherited by this thread (forked pool workers).

    A forked worker process begins life as a copy of the submitting
    thread — including that thread's active budget.  Tasks carry their
    own shipped remaining budget, so the inherited scope must go before
    the worker starts serving.
    """
    _tls.active = None


@contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[_ActiveBudget]]:
    """Activate *budget* for the dynamic extent of the block.

    ``None`` or an unlimited budget leaves enforcement off (zero
    overhead in the substrate hot paths).  Scopes nest; the inner scope
    wins while active.  The scope is per-thread; use
    :func:`adopt_scope` to extend it into helper threads.
    """
    if budget is None or budget.is_unlimited:
        yield None
        return
    previous = active_budget()
    scope = _ActiveBudget(budget)
    _tls.active = scope
    try:
        yield scope
    finally:
        _tls.active = previous


@contextmanager
def adopt_scope(scope: Optional[_ActiveBudget]) -> Iterator[None]:
    """Activate an *existing* budget scope in the calling thread.

    The pipeline's thread executor captures :func:`active_budget` when a
    region is scheduled and adopts it inside each worker thread, so every
    task of one request charges the **same** book-keeping object — the
    request-wide wall/ops/FM totals behave exactly as they did when the
    slot was process-global.  ``None`` adopts nothing (no budget in the
    scheduling thread).
    """
    if scope is None:
        yield
        return
    previous = active_budget()
    _tls.active = scope
    try:
        yield
    finally:
        _tls.active = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Disable budget enforcement for the block (calling thread only).

    The degradation paths run under an *exhausted* budget by definition;
    the (cheap, bounded) work of building a conservative fallback must
    not re-trip it.
    """
    previous = active_budget()
    _tls.active = None
    try:
        yield
    finally:
        _tls.active = previous


def checkpoint() -> None:
    """Raise :class:`BudgetExceeded` if the active budget ran out.

    Cheap no-op without an active budget; hot substrate entry points
    (feasibility tests, FM elimination) call this.
    """
    active = active_budget()
    if active is not None:
        active.checkpoint()


def charge_fm(amount: int) -> None:
    """Charge *amount* units of Fourier–Motzkin work to the budget."""
    active = active_budget()
    if active is not None:
        active.charge_fm(amount)
