"""Persistent on-disk job queue: journal, atomic claims, crash recovery.

The production service decouples *accepting* work from *executing* it:
the HTTP front door (:mod:`repro.service.http`) and the stdio loop
(:mod:`repro.service.server`) only ever :meth:`~JobQueue.submit`;
the worker fleet (:mod:`repro.service.workers`) drains the queue
through the analysis pipeline.  The queue is a directory::

    <dir>/
      journal.jsonl   append-only event log (submit/claim/done/recover)
      jobs/<id>.json      the job record (kind, body, priority, seq)
      claims/<id>         exists while a worker owns the job (hard link)
      results/<id>.json   the terminal response (done or failed)
      receipts/<id>.json  the per-job provenance receipt

Every state transition is carried by an **atomic filesystem operation**
(a hard link publishes a complete job record under its sequence-numbered
name and fails on collision, a second hard link of the record at
``claims/<id>`` arbitrates claims the same way, temp-file +
``os.replace`` lands results), so any number of threads
*and* processes may share one queue directory:

* a job is **queued** when its record exists and neither a claim nor a
  result does;
* **running** when a claim exists but no result (exactly one worker can
  hold the claim — link creation fails with ``EEXIST`` for everyone
  after the first);
* **done** / **failed** once the result record exists (the receipt is
  written *before* the result, so a finished job always has one).

Crash safety falls out of that ordering: a worker that dies between
claim and result leaves a claim with no result, and :meth:`recover` (run
when a queue is reopened) deletes the orphaned claim — the job becomes
claimable again and re-runs **exactly once**, because re-claiming goes
back through the same atomic-link gate.  A crash *after* the result write
loses nothing: the job is terminal and its receipt is already on disk.

Scheduling is deterministic: jobs are claimed in (priority descending,
sequence ascending) order — FIFO within each priority class.  The queue
is bounded (:class:`QueueFull` carries a suggested retry delay); the
HTTP front door maps it to ``429 Retry-After``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import perf

for _name in (
    "queue.submitted",
    "queue.claimed",
    "queue.finished",
    "queue.recovered",
    "queue.rejected",
    "queue.scan_cached",
    "queue.batches",
):
    perf.declare(_name)

#: job kinds the execution core understands (see repro.service.jobs)
JOB_KINDS = ("analyze", "experiment")


class QueueFull(RuntimeError):
    """The queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, capacity: int, retry_after: float = 1.0):
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after
        super().__init__(
            f"queue full: {depth} pending >= capacity {capacity}"
        )


class Job:
    """One queued unit of work (identity + payload, no behavior)."""

    __slots__ = ("id", "kind", "body", "priority", "seq", "submitted_at")

    def __init__(self, id, kind, body, priority, seq, submitted_at):
        self.id = id
        self.kind = kind
        self.body = body
        self.priority = priority
        self.seq = seq
        self.submitted_at = submitted_at

    def record(self) -> Dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "body": self.body,
            "priority": self.priority,
            "seq": self.seq,
            "submitted_at": self.submitted_at,
        }

    @staticmethod
    def from_record(rec: Dict) -> "Job":
        return Job(
            rec["id"],
            rec["kind"],
            rec["body"],
            rec.get("priority", 0),
            rec["seq"],
            rec.get("submitted_at"),
        )


def _tmp_name(path: Path) -> str:
    """A collision-free sibling temp name (unique per process+thread,
    and no two writers ever target the same final path concurrently) —
    cheaper than ``mkstemp``'s probe loop on the serve hot path."""
    return f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"


def _put_bytes(path, payload: bytes) -> None:
    """One-shot small-file write on a raw fd.

    ``io.open``'s wrapper stack (BufferedWriter + TextIOWrapper) costs
    more than the write itself for the small records on the queue's hot
    path; raw ``os.open``/``os.write``/``os.close`` is ~3x cheaper.
    """
    fd = os.open(str(path), os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)


def _write_atomic(path: Path, payload: Dict) -> None:
    """Write *payload* as JSON via temp file + ``os.replace``.

    ``json.dumps`` (not ``json.dump``) keeps the C encoder; streaming
    to a file goes through the pure-Python iterencode path, ~3x slower.
    """
    _write_bytes_atomic(path, json.dumps(payload, sort_keys=True).encode())


def _write_bytes_atomic(path: Path, payload: bytes) -> None:
    tmp = _tmp_name(path)
    try:
        _put_bytes(tmp, payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Dict]:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


class JobQueue:
    """A persistent, bounded, multi-producer multi-consumer job queue.

    *capacity* bounds the number of **pending** (queued, unclaimed)
    jobs — running and finished jobs never count against it, so a busy
    fleet cannot wedge the front door.  Opening a queue directory runs
    :meth:`recover` unless ``recover=False``.
    """

    def __init__(self, root, capacity: int = 256, recover: bool = True):
        self.root = Path(root)
        self.capacity = capacity
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.receipts_dir = self.root / "receipts"
        for d in (
            self.jobs_dir,
            self.claims_dir,
            self.results_dir,
            self.receipts_dir,
        ):
            d.mkdir(parents=True, exist_ok=True)
        self._journal_path = self.root / "journal.jsonl"
        #: serializes submits, journal writes and the scan cache between
        #: this process's threads (reentrant: ``submit`` scans while
        #: holding it); cross-process arbitration is the atomic
        #: ``os.link`` that publishes a job record under its
        #: sequence-numbered name
        self._local = threading.RLock()
        #: wakes in-process waiters when a result lands
        self._done_cond = threading.Condition()
        #: wakes idle in-process workers when a job arrives; the
        #: generation counter closes the scan-then-park race (a submit
        #: landing between a worker's empty claim scan and its park
        #: bumps the generation, so the park returns immediately)
        self._submit_cond = threading.Condition()
        self._submit_gen = 0
        #: in-process fast path mirroring ``results/`` — spares waiters a
        #: file read per poll; disk stays the cross-process truth
        self._responses: Dict[str, Dict] = {}
        #: job records are immutable once written, so claims under a
        #: backlog need not re-parse every pending record from disk
        self._records: Dict[str, Dict] = {}
        #: append handle kept open across journal writes (one ``open``
        #: per event is measurable on the serve hot path)
        self._journal_file = None
        #: memoized directory scan, keyed by journal size.  Every
        #: mutation that can make a job pending or un-pending — submit,
        #: claim, recover — appends a journal line first, and the
        #: journal only ever grows, so an unchanged size proves the
        #: listing is still current (no mtime-granularity hazards).
        #: ``_journal`` keeps the cache coherent for this process's own
        #: events; any other process's append changes the size and
        #: forces a rescan.  (journal_size, pending_ids, max_seq)
        self._scan_cache: Optional[Tuple[int, List[str], int]] = None
        if recover:
            self.recover()

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------
    def _journal(self, event: str, job_id: str, **extra) -> None:
        self._journal_many([(event, job_id, extra)])

    def _journal_many(self, events: List[Tuple[str, str, Dict]]) -> None:
        """Append per-job journal lines for *events* in **one** write.

        Every event still gets its own line (per-job provenance is
        preserved), but a batch of N submits or claims costs one
        ``write`` on the unbuffered journal fd — one syscall, one
        flush — instead of N.  The journal stays line-oriented, so a
        crash mid-write tears at most the final line; recovery ignores
        the torn tail and trusts the directory listings, which were
        published (atomically, per job) *before* the journal write.
        """
        now = round(time.time(), 3)
        lines = []
        for event, job_id, extra in events:
            entry = {"ev": event, "id": job_id, "t": now}
            entry.update(extra)
            lines.append(json.dumps(entry, sort_keys=True))
        payload = ("\n".join(lines) + "\n").encode()
        with self._local:
            if self._journal_file is None or self._journal_file.closed:
                # binary + unbuffered: every event must hit the OS (the
                # crash-recovery contract reads the journal of killed
                # processes), and ``tell`` on a raw fd is a cheap seek
                # where text-mode tell computes an opaque cookie
                self._journal_file = open(self._journal_path, "ab", buffering=0)
            self._journal_file.write(payload)
            # keep the scan memo coherent for our own events instead of
            # letting the size change force a rescan: this process knows
            # exactly how each event moves the pending set
            cached = self._scan_cache
            if cached is not None:
                _, pending, max_seq = cached
                for event, job_id, _extra in events:
                    if event == "submit":
                        pending.append(job_id)
                        try:
                            max_seq = max(max_seq, int(job_id[1:]))
                        except ValueError:
                            pass
                    elif event == "claim":
                        try:
                            pending.remove(job_id)
                        except ValueError:
                            pass
                    elif event == "recover" and job_id not in pending:
                        pending.append(job_id)
                self._scan_cache = (
                    self._journal_file.tell(),
                    pending,
                    max_seq,
                )

    def journal_events(self, job_id: Optional[str] = None) -> List[Dict]:
        """Parsed journal entries, optionally filtered to one job."""
        out: List[Dict] = []
        try:
            with open(self._journal_path) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn tail write from a crash
                    if job_id is None or entry.get("id") == job_id:
                        out.append(entry)
        except FileNotFoundError:
            pass
        return out

    # ------------------------------------------------------------------
    # submit
    # ------------------------------------------------------------------
    def _journal_size(self) -> int:
        try:
            return os.stat(self._journal_path).st_size
        except OSError:
            return -1

    def _scan_jobs(self) -> Tuple[List[str], int]:
        """One pass over the directory listings: (pending ids, max seq).

        Job records are never deleted, so the highest sequence-numbered
        file is the allocation high-water mark for this directory — no
        separate counter file needed.

        The result is memoized against the journal size (see
        ``_scan_cache``): the steady-state claim — a worker re-polling a
        queue nothing has touched — costs one ``stat`` instead of three
        ``listdir`` calls.  The size is read *before* the listings, so
        an event landing mid-scan leaves a stale key behind and the next
        call rescans.
        """
        with self._local:
            size = self._journal_size()
            cached = self._scan_cache
            if cached is not None and cached[0] == size:
                perf.bump("queue.scan_cached")
                return list(cached[1]), cached[2]
            try:
                job_files = os.listdir(self.jobs_dir)
            except FileNotFoundError:
                return [], 0
            claimed = set(os.listdir(self.claims_dir))
            finished = set(os.listdir(self.results_dir))
            pending = []
            max_seq = 0
            for fn in job_files:
                if not (fn.startswith("j") and fn.endswith(".json")):
                    continue
                jid = fn[:-5]
                try:
                    max_seq = max(max_seq, int(jid[1:]))
                except ValueError:
                    continue
                if jid not in claimed and fn not in finished:
                    pending.append(jid)
            self._scan_cache = (size, pending, max_seq)
            return list(pending), max_seq

    def submit(self, kind: str, body: Dict, priority: int = 0) -> str:
        """Accept one job; returns its queue id.

        Raises :class:`QueueFull` at capacity and :class:`ValueError`
        for an unknown *kind* — acceptance validates only what it must
        to route the job; the body itself is validated by the worker
        (a malformed body becomes a *failed job*, not a lost one).
        """
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r} (use one of {', '.join(JOB_KINDS)})"
            )
        with self._local:
            pending, max_seq = self._scan_jobs()
            if len(pending) >= self.capacity:
                perf.bump("queue.rejected")
                raise QueueFull(len(pending), self.capacity)
            job = self._publish_record(kind, body, priority, max_seq)
        self._records[job.id] = job.record()
        self._journal("submit", job.id, kind=kind, priority=job.priority)
        perf.bump("queue.submitted")
        with self._submit_cond:
            self._submit_gen += 1
            # one job needs one worker: waking the whole fleet would put
            # every loser through a futile claim scan that competes (on
            # the GIL) with the worker actually running the job
            self._submit_cond.notify()
        return job.id

    def _publish_record(self, kind, body, priority, seq_hint: int) -> Job:
        """Publish one job record under the next free sequence number.

        The hard link is atomic and fails on a name collision, so it
        arbitrates between processes sharing the directory (``_local``
        already serializes this process's threads).  Caller holds
        ``_local``.
        """
        seq = seq_hint
        while True:
            seq += 1
            job = Job(
                id=f"j{seq:08d}",
                kind=kind,
                body=body,
                priority=int(priority),
                seq=seq,
                submitted_at=round(time.time(), 3),
            )
            path = self.jobs_dir / f"{job.id}.json"
            tmp = _tmp_name(path)
            _put_bytes(tmp, json.dumps(job.record(), sort_keys=True).encode())
            try:
                os.link(tmp, path)
                return job
            except FileExistsError:
                continue  # another process took this seq; retry
            finally:
                os.unlink(tmp)

    def submit_batch(
        self, kind: str, bodies: List[Dict], priority: int = 0
    ) -> List[str]:
        """Accept many jobs in one shot; returns their queue ids in order.

        Admission is all-or-nothing against capacity (a half-admitted
        batch helps nobody), but each job is otherwise independent: its
        record is published atomically under its own id, it is claimed
        and finished individually, and it gets its own receipt.  What
        the batch path saves is per-job overhead: one capacity scan, one
        journal write/flush for all N submit events
        (:meth:`_journal_many` — per-job events preserved) and one
        fleet wake-up, instead of N of each.
        """
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r} (use one of {', '.join(JOB_KINDS)})"
            )
        bodies = list(bodies)
        if not bodies:
            return []
        jobs: List[Job] = []
        with self._local:
            pending, max_seq = self._scan_jobs()
            if len(pending) + len(bodies) > self.capacity:
                perf.bump("queue.rejected")
                raise QueueFull(len(pending), self.capacity)
            seq_hint = max_seq
            for body in bodies:
                job = self._publish_record(kind, body, priority, seq_hint)
                seq_hint = job.seq
                jobs.append(job)
            for job in jobs:
                self._records[job.id] = job.record()
            self._journal_many(
                [
                    ("submit", job.id, {"kind": kind, "priority": job.priority})
                    for job in jobs
                ]
            )
        perf.bump("queue.submitted", len(jobs))
        perf.bump("queue.batches")
        with self._submit_cond:
            self._submit_gen += 1
            # a batch saturates the fleet: wake everyone
            self._submit_cond.notify_all()
        return [job.id for job in jobs]

    def submit_generation(self) -> int:
        """Read before an empty claim scan; pass to :meth:`wait_for_submit`
        so a submit racing the scan cannot be slept through."""
        with self._submit_cond:
            return self._submit_gen

    def wait_for_submit(self, timeout: float, gen: Optional[int] = None) -> int:
        """Park an idle worker until a submit (or *timeout* elapses).

        *gen* is the :meth:`submit_generation` the caller read before its
        (empty) claim scan: if any submit has landed since, the park
        returns immediately instead of sleeping through it.  In-process
        submits wake parked workers immediately; submits from other
        processes sharing the directory are picked up when the timeout
        expires and the worker re-polls.  Returns the current generation.
        """
        with self._submit_cond:
            if gen is None or gen == self._submit_gen:
                self._submit_cond.wait(timeout)
            return self._submit_gen

    def kick(self) -> None:
        """Wake every parked worker (used to begin a drain promptly)."""
        with self._submit_cond:
            self._submit_gen += 1
            self._submit_cond.notify_all()
        with self._done_cond:
            self._done_cond.notify_all()

    # ------------------------------------------------------------------
    # claim / finish
    # ------------------------------------------------------------------
    def _pending_ids(self) -> List[str]:
        """Queued-and-unclaimed job ids — three ``listdir`` calls, no
        per-file stats (the scan runs on every submit and claim)."""
        return self._scan_jobs()[0]

    def _record(self, jid: str) -> Optional[Dict]:
        rec = self._records.get(jid)
        if rec is None:  # submitted by another process sharing the dir
            rec = _read_json(self.jobs_dir / f"{jid}.json")
            if rec is not None:
                self._records[jid] = rec
        return rec

    def _ordered_pending(self) -> List[Dict]:
        pending = []
        for jid in self._pending_ids():
            rec = self._record(jid)
            if rec is not None:
                pending.append(rec)
        pending.sort(key=lambda r: (-r.get("priority", 0), r["seq"]))
        return pending

    def claim(self, owner: str = "") -> Optional[Job]:
        """Atomically take the next pending job, or ``None``.

        Deterministic order: highest priority first, FIFO (sequence
        order) within a priority.  The claim is a hard link of the job
        record at ``claims/<id>``: link creation fails with ``EEXIST``
        when the name is taken, so exactly one claimant ever wins — the
        same cross-process guarantee as an ``O_CREAT|O_EXCL`` create,
        in one syscall instead of open+write+close (file creation is
        ~8x the cost of a link on the queue's hot path).  The owner is
        recorded in the journal's claim event.
        """
        jobs = self.claim_chunk(owner=owner, limit=1)
        return jobs[0] if jobs else None

    def claim_chunk(self, owner: str = "", limit: int = 1) -> List[Job]:
        """Atomically take up to *limit* pending jobs, in claim order.

        Same per-job atomic-link arbitration as :meth:`claim` — each
        job is still won exactly once, workers may still crash holding
        any prefix of the chunk and recovery re-enqueues those jobs
        individually — but the N claim events land in one journal
        write/flush, so a worker draining a deep backlog pays per-chunk
        rather than per-job dispatch overhead.
        """
        limit = max(1, int(limit))
        won: List[Job] = []
        for rec in self._ordered_pending():
            jid = rec["id"]
            try:
                os.link(
                    str(self.jobs_dir / f"{jid}.json"),
                    str(self.claims_dir / jid),
                )
            except FileExistsError:
                continue  # another worker won this job
            except FileNotFoundError:
                continue  # record not visible here (foreign cleanup)
            won.append(Job.from_record(rec))
            if len(won) >= limit:
                break
        if won:
            self._journal_many(
                [("claim", job.id, {"owner": owner}) for job in won]
            )
            perf.bump("queue.claimed", len(won))
        return won

    def finish(self, job_id: str, response: Dict, receipt: Optional[Dict]) -> None:
        """Record a job's terminal result (and its receipt, first).

        ``response["ok"]`` selects the terminal state (done vs failed).
        The receipt lands before anything announces the job as terminal,
        so an observer who sees a terminal job can always read its
        provenance; a crash between the writes leaves the claim orphaned
        and recovery re-runs the job — overwriting the receipt with
        identical stable content.

        In-process waiters are woken right after the receipt lands,
        *before* the result file and journal writes: the response dict
        is already final, and each trailing write releases the GIL at
        its syscall, so on a busy single core the waiter's next submit
        overlaps this job's bookkeeping instead of queueing behind it.
        Synchronous callers still get the full ordering — ``finish``
        does not return until everything is on disk.
        """
        if receipt is not None:
            from repro.service.receipts import receipt_bytes

            _write_bytes_atomic(
                self.receipts_dir / f"{job_id}.json", receipt_bytes(receipt)
            )
        self._records.pop(job_id, None)  # terminal: not claimable again
        with self._done_cond:
            self._responses[job_id] = response
            if len(self._responses) > 4096:  # disk keeps the full history
                self._responses.pop(next(iter(self._responses)))
            self._done_cond.notify_all()
        state = "done" if response.get("ok") else "failed"
        _write_atomic(
            self.results_dir / f"{job_id}.json",
            {"id": job_id, "state": state, "response": response},
        )
        self._journal(state, job_id)
        perf.bump("queue.finished")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> List[str]:
        """Re-enqueue claimed-but-unfinished jobs (crashed workers).

        Deleting the orphaned claim makes the job claimable again; the
        journal records the recovery.  Returns the recovered ids.
        """
        recovered = []
        for claim in self.claims_dir.glob("j*"):
            jid = claim.name
            if (self.results_dir / f"{jid}.json").exists():
                continue  # terminal; claim file is just history
            try:
                os.unlink(claim)
            except OSError:
                continue
            self._journal("recover", jid)
            perf.bump("queue.recovered")
            recovered.append(jid)
        return sorted(recovered)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def state(self, job_id: str) -> Optional[str]:
        """``"queued" | "running" | "done" | "failed"``, or ``None``."""
        result = _read_json(self.results_dir / f"{job_id}.json")
        if result is not None:
            return result["state"]
        if not (self.jobs_dir / f"{job_id}.json").exists():
            return None
        if (self.claims_dir / job_id).exists():
            return "running"
        return "queued"

    def job(self, job_id: str) -> Optional[Job]:
        rec = _read_json(self.jobs_dir / f"{job_id}.json")
        return Job.from_record(rec) if rec is not None else None

    def response(self, job_id: str) -> Optional[Dict]:
        """The terminal response object, or ``None`` while unfinished."""
        resp = self._responses.get(job_id)
        if resp is not None:
            return resp
        result = _read_json(self.results_dir / f"{job_id}.json")
        return result["response"] if result is not None else None

    def receipt(self, job_id: str) -> Optional[Dict]:
        return _read_json(self.receipts_dir / f"{job_id}.json")

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[Dict]:
        """Block until *job_id* is terminal; returns its response.

        In-process completions wake waiters immediately — the check runs
        under the completion condition, so a finish landing between poll
        and sleep cannot be missed.  Cross-process completions are
        picked up by a short poll.  ``None`` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done_cond:
            while True:
                resp = self.response(job_id)
                if resp is not None:
                    return resp
                # in-process finishes notify; the poll only bounds how
                # long a cross-process completion can go unnoticed (and
                # cheap enough not to preempt busy workers on one core)
                remaining = 0.5
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0:
                        return None
                self._done_cond.wait(remaining)

    def depth(self) -> int:
        """Pending (queued, unclaimed) jobs — the backpressure measure."""
        return len(self._pending_ids())

    def stats(self) -> Dict:
        """Queue-shape snapshot for ``GET /v1/stats``."""
        states = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for path in self.jobs_dir.glob("j*.json"):
            st = self.state(path.stem)
            if st in states:
                states[st] += 1
        states["capacity"] = self.capacity
        return states
