"""JSON-lines batch/server front end (``serve --stdio``).

``python -m repro serve`` reads one analysis request per line from
stdin and writes one JSON result per line to stdout, in request order.
Since the job-system refactor the loop is a thin front end over the
same persistent queue + worker fleet the HTTP front door uses
(:mod:`repro.service.queue` / :mod:`repro.service.workers`): each line
becomes a queued job, ``--jobs N`` sizes the worker fleet, and results
stream strictly in request order through a sliding window — responses
are byte-identical to the pre-queue server (an integration test pins
the full suite).

Request object::

    {"id": 7,                      # echoed back verbatim (optional)
     "source": "program p\\n...",   # inline source text, or:
     "file": "path/to/prog.f",     # read from disk (worker-side)
     "options": "predicated",      # or "base" (default "predicated")
     "budget": {"max_wall_s": 1.0, # optional per-request budget
                "max_ops": 100000,
                "max_fm_constraints": 20000},
     "report": false}              # include the formatted text report

An optional ``"kind"`` field selects the job kind (``"analyze"``, the
default, or ``"experiment"`` with a ``"which"`` body — the same schema
``POST /v1/jobs`` accepts).

Response object::

    {"id": 7, "ok": true, "program": "p",
     "degraded": false,            # any budget demotion happened
     "loops": [{"label": "p:L1", "unit": "p", "status": "parallel",
                "condition": null, "runtime_test": null, "reason": "",
                "enclosed": false}, ...]}

A failed request answers ``{"id": ..., "ok": false, "error": "..."}``
on its own line — one bad request never takes down the server or the
batch.  An unknown ``budget`` key is such a failure (the server names
the bad key rather than silently granting an unlimited budget).  Budget
exhaustion is *not* a failure: it degrades the answer (sound,
``"degraded": true``) and the server keeps going.

The cache directory configured via ``--cache`` (or the
``REPRO_CACHE_DIR`` environment variable) is shared by every worker, so
a long-lived server warms it monotonically.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from collections import deque
from typing import Dict, Optional, TextIO

from repro.service.jobs import run_analyze


def handle_request(req: Dict) -> Dict:
    """Analyze one request dict into one response dict (never raises).

    The direct (no queue) entry point; kept as the pinned wire format —
    :func:`repro.service.jobs.run_analyze` is the single implementation
    both this and the job system use.
    """
    resp, _extras = run_analyze(req)
    return resp


def _handle_line(line: str) -> Dict:
    try:
        req = json.loads(line)
    except ValueError as exc:
        return {"id": None, "ok": False, "error": f"bad JSON: {exc}"}
    if not isinstance(req, dict):
        return {"id": None, "ok": False, "error": "request must be an object"}
    return handle_request(req)


def _emit(out: TextIO, resp: Dict) -> None:
    out.write(json.dumps(resp, sort_keys=True) + "\n")
    out.flush()


def serve(
    in_stream: TextIO,
    out_stream: TextIO,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    queue_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> int:
    """Run the JSON-lines loop until EOF; returns the request count.

    Every request runs through the queue + worker core: *jobs* worker
    threads drain the queue (each job under its own thread-local
    budget), *executor* optionally puts the process pool under each
    job's pipeline.  A line that fails to parse, or names an unknown
    job kind, is answered locally — still on its own line, still in
    request order.  With *queue_dir* ``None`` the queue lives in a
    temporary directory deleted on return; pass a path to keep the
    journal and receipts.
    """
    if cache_dir is not None:
        from repro.service.cache import set_default_cache_dir

        set_default_cache_dir(cache_dir)

    from repro.service.queue import JobQueue, QueueFull
    from repro.service.workers import WorkerFleet

    workers = max(1, jobs)
    own_dir = queue_dir is None
    qdir = tempfile.mkdtemp(prefix="repro-serve-") if own_dir else queue_dir
    queue = JobQueue(qdir, capacity=max(64, 4 * workers))
    fleet = WorkerFleet(queue, workers=workers, pipeline_executor=executor)
    fleet.start()

    #: responses already decided locally, or job ids awaiting results —
    #: emitted strictly in arrival order
    window: deque = deque()
    count = 0

    def emit_head(block: bool) -> bool:
        nonlocal count
        kind, val = window[0]
        if kind == "resp":
            resp = val
        else:
            resp = queue.wait(val) if block else queue.response(val)
            if resp is None:
                return False
        _emit(out_stream, resp)
        window.popleft()
        count += 1
        return True

    try:
        for line in in_stream:
            if not line.strip():
                continue
            try:
                req = json.loads(line)
                if not isinstance(req, dict):
                    raise TypeError("request must be an object")
                kind = req.pop("kind", "analyze")
            except ValueError as exc:
                window.append(
                    ("resp", {"id": None, "ok": False,
                              "error": f"bad JSON: {exc}"})
                )
            except TypeError as exc:
                window.append(
                    ("resp", {"id": None, "ok": False, "error": str(exc)})
                )
            else:
                while True:
                    try:
                        window.append(("job", queue.submit(kind, req)))
                        break
                    except QueueFull:
                        emit_head(block=True)  # backpressure: drain one
                    except ValueError as exc:
                        window.append(
                            ("resp", {"id": req.get("id"), "ok": False,
                                      "error": f"ValueError: {exc}"})
                        )
                        break
            # stream: flush whatever is already done, in order, and
            # block once the window outgrows the fleet's useful depth
            while window and emit_head(block=len(window) >= 2 * workers):
                pass
        while window:
            emit_head(block=True)
    finally:
        fleet.drain()
        if own_dir:
            shutil.rmtree(qdir, ignore_errors=True)
    return count
