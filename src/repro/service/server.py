"""JSON-lines batch/server front end.

``python -m repro serve`` reads one analysis request per line from
stdin and writes one JSON result per line to stdout, in request order.
With ``--jobs N`` requests fan out over the experiment worker pool (the
same fork-preferred, order-preserving machinery as ``experiments
--jobs``) through a sliding window, so results stream while later
requests are still being read.

Request object::

    {"id": 7,                      # echoed back verbatim (optional)
     "source": "program p\\n...",   # inline source text, or:
     "file": "path/to/prog.f",     # read from disk (worker-side)
     "options": "predicated",      # or "base" (default "predicated")
     "budget": {"max_wall_s": 1.0, # optional per-request budget
                "max_ops": 100000,
                "max_fm_constraints": 20000},
     "report": false}              # include the formatted text report

Response object::

    {"id": 7, "ok": true, "program": "p",
     "degraded": false,            # any budget demotion happened
     "loops": [{"label": "p:L1", "unit": "p", "status": "parallel",
                "condition": null, "runtime_test": null, "reason": "",
                "enclosed": false}, ...]}

A failed request answers ``{"id": ..., "ok": false, "error": "..."}``
on its own line — one bad request never takes down the server or the
batch.  Budget exhaustion is *not* a failure: it degrades the answer
(sound, ``"degraded": true``) and the server keeps going.

The cache directory configured via ``--cache`` (or the
``REPRO_CACHE_DIR`` environment variable) is shared by every worker, so
a long-lived server warms it monotonically.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, TextIO

from repro import perf
from repro.service.budgets import Budget, budget_scope
from repro.service.cache import default_cache

#: degradation counters summed to decide a request's ``degraded`` flag
_DEGRADE_COUNTERS = ("budget.degraded_unit", "budget.degraded_loop")


def _options_named(name: str):
    from repro.arraydf.options import AnalysisOptions

    if name == "base":
        return AnalysisOptions.base()
    if name == "predicated":
        return AnalysisOptions.predicated()
    raise ValueError(f"unknown options {name!r} (use 'predicated' or 'base')")


def handle_request(req: Dict) -> Dict:
    """Analyze one request dict into one response dict (never raises)."""
    rid = req.get("id")
    try:
        source = req.get("source")
        if source is None:
            path = req.get("file")
            if path is None:
                raise ValueError("request needs 'source' or 'file'")
            with open(path) as f:
                source = f.read()
        opts = _options_named(req.get("options", "predicated"))
        budget = Budget.from_dict(req.get("budget"))

        from repro.lang.parser import parse_program
        from repro.partests.driver import analyze_program

        program = parse_program(source)
        before = sum(perf.counter(c) for c in _DEGRADE_COUNTERS)
        with budget_scope(budget):
            result = analyze_program(program, opts, cache=default_cache())
        degraded = sum(perf.counter(c) for c in _DEGRADE_COUNTERS) > before

        loops = [
            {
                "label": l.label,
                "unit": l.unit,
                "status": l.status,
                "condition": (
                    None
                    if l.condition is None or l.condition.is_true()
                    else str(l.condition)
                ),
                "runtime_test": l.runtime_test,
                "reason": l.reason,
                "enclosed": l.enclosed,
            }
            for l in result.loops
        ]
        resp: Dict = {
            "id": rid,
            "ok": True,
            "program": program.main,
            "degraded": degraded,
            "loops": loops,
        }
        if req.get("report"):
            from repro.codegen.report import format_report

            resp["report"] = format_report(result)
        return resp
    except Exception as exc:  # one bad request must not kill the batch
        return {"id": rid, "ok": False, "error": f"{type(exc).__name__}: {exc}"}


def _handle_line(line: str) -> Dict:
    try:
        req = json.loads(line)
    except ValueError as exc:
        return {"id": None, "ok": False, "error": f"bad JSON: {exc}"}
    if not isinstance(req, dict):
        return {"id": None, "ok": False, "error": "request must be an object"}
    return handle_request(req)


def _instrumented_line(line: str):
    """Worker-side wrapper: response plus this process's perf state."""
    return os.getpid(), _handle_line(line), perf.snapshot()


def _emit(out: TextIO, resp: Dict) -> None:
    out.write(json.dumps(resp, sort_keys=True) + "\n")
    out.flush()


def serve(
    in_stream: TextIO,
    out_stream: TextIO,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> int:
    """Run the JSON-lines loop until EOF; returns the request count."""
    if cache_dir is not None:
        from repro.service.cache import set_default_cache_dir

        set_default_cache_dir(cache_dir)

    lines = (l for l in in_stream if l.strip())
    count = 0
    if jobs <= 1:
        for line in lines:
            _emit(out_stream, _handle_line(line))
            count += 1
        return count

    from collections import deque
    from concurrent.futures import ProcessPoolExecutor
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    base = perf.snapshot()
    per_worker: Dict[int, Dict] = {}

    def absorb(future) -> Dict:
        pid, resp, snap = future.result()
        seen = per_worker.get(pid)
        per_worker[pid] = snap if seen is None else perf.snapshot_max(seen, snap)
        return resp

    with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
        window: deque = deque()
        for line in lines:
            window.append(pool.submit(_instrumented_line, line))
            # keep the pool busy but stream strictly in request order
            while window and (window[0].done() or len(window) >= 2 * jobs):
                _emit(out_stream, absorb(window.popleft()))
                count += 1
        while window:
            _emit(out_stream, absorb(window.popleft()))
            count += 1
    for snap in per_worker.values():
        perf.absorb_snapshot(perf.snapshot_delta(snap, base))
    return count
