"""The serving substrate: budgets, the summary cache, and the server.

This package turns the one-shot analysis pipeline into something a
long-lived service can run safely:

:mod:`repro.service.budgets`
    Per-request resource budgets (wall clock, substrate operations,
    Fourier–Motzkin work) and the :class:`BudgetExceeded` signal the
    analysis layers translate into *graceful degradation* — a
    conservative, still-sound answer instead of a crash.

:mod:`repro.service.cache`
    A content-addressed, on-disk procedure-summary cache.  Keys hash the
    canonical source text of a procedure, the keys of its callees and the
    analysis options, so re-analyzing a suite (or a program with one
    edited procedure) recomputes only the dirty subtree of the call
    graph, byte-identical to a cold run.

:mod:`repro.service.degrade`
    The conservative fallbacks budgets demote to: whole-array
    read/write procedure summaries and "not proven parallel" loops.

:mod:`repro.service.server`
    A JSON-lines batch/server front end (``python -m repro serve``) that
    fans requests over the experiment worker pool and streams results.

Only the light, dependency-free modules are imported eagerly so the
substrate layers (``repro.linalg``) can use the budget hooks without an
import cycle; import :mod:`repro.service.server` explicitly where
needed.
"""

from repro.service.budgets import (
    Budget,
    BudgetExceeded,
    active_budget,
    budget_scope,
    charge_fm,
    checkpoint,
)
from repro.service.cache import SummaryCache, default_cache, set_default_cache_dir

__all__ = [
    "Budget",
    "BudgetExceeded",
    "SummaryCache",
    "active_budget",
    "budget_scope",
    "charge_fm",
    "checkpoint",
    "default_cache",
    "set_default_cache_dir",
]
