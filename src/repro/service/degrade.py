"""Conservative fallbacks for budget-exhausted analyses.

When a :class:`~repro.service.budgets.Budget` trips mid-procedure, the
analysis cannot finish its precise summary — but it can always fall back
to the coarsest *sound* one:

* every array the procedure (or loop body) can see **may be read and
  written anywhere** (whole-array regions);
* **nothing is definitely written** (empty must-write — fabricating
  coverage would be unsound);
* every read **may be exposed** (exposed = may-read);
* every scalar the unit mentions may be written.

Fed to the dependence tests, such a summary can only produce
conflicts, so every decision downstream of a demotion moves toward
"not proven parallel" — decisions never flip *toward* parallel, which
is why degraded results remain ELPD-consistent (a loop reported
``serial`` is trivially safe to run serially).

These builders run with budget enforcement :func:`suspended
<repro.service.budgets.suspended>` — they are invoked precisely when a
budget is exhausted, and the small, bounded amount of substrate work
they do (region construction runs emptiness checks) must not re-trip
it.
"""

from __future__ import annotations

from typing import List

from repro.arraydf.values import AccessValue, GuardedSummary
from repro.ir.regiongraph import LoopRegion, ProcRegion, Region
from repro.ir.symboltable import SymbolTable
from repro.lang.astnodes import Assign, ReadStmt, VarRef, walk_stmts
from repro.predicates.formula import TRUE
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.service.budgets import suspended


def conservative_value(
    symtab: SymbolTable, arrays: List[str], scalar_writes
) -> AccessValue:
    """Whole-array may-read/may-write, no must-write, all reads exposed."""
    with suspended():
        regions = [
            ArrayRegion.whole(a, symtab.rank(a), symtab.affine_extents(a))
            for a in sorted(arrays)
        ]
        may = SummarySet.of(*regions)
        return AccessValue(
            r=may,
            w=may,
            m=(GuardedSummary(TRUE, SummarySet.empty()),),
            e=(GuardedSummary(TRUE, may),),
            scalar_writes=frozenset(scalar_writes),
        )


def _assigned_scalars(stmts) -> frozenset:
    names = set()
    for s in walk_stmts(stmts):
        if isinstance(s, Assign) and isinstance(s.target, VarRef):
            names.add(s.target.name)
        elif isinstance(s, ReadStmt):
            names.update(s.names)
    return frozenset(names)


def conservative_unit_summary(unit, symtab: SymbolTable, opts):
    """A whole-unit fallback :class:`UnitSummary`.

    Every loop gets a conservative body/loop value (so the driver's
    dependence tests — if they run at all under an exhausted budget —
    can only fail to prove parallelism), and the procedure summary
    exposes whole-array accesses of the formals to callers.  Loops are
    recorded in the same post-order the precise walker uses so report
    ordering stays stable.
    """
    # local import: analysis imports this module lazily, and importing
    # analysis at module load would be circular
    from repro.arraydf.analysis import LoopSummary, UnitSummary
    from repro.ir.loopinfo import collect_loop_info
    from repro.ir.regiongraph import build_region_tree

    proc = build_region_tree(unit)
    info = collect_loop_info(proc)
    arrays = symtab.declared_arrays()
    summary = UnitSummary(unit.name, AccessValue.empty(), {}, info)

    def visit(region: Region) -> None:
        for child in region.children():
            visit(child)
        if isinstance(region, LoopRegion):
            loop = region.stmt
            loop_info = info[loop]
            value = conservative_value(
                symtab,
                arrays,
                _assigned_scalars(loop.body) | frozenset([loop.var]),
            )
            summary.loops[loop] = LoopSummary(
                loop=loop,
                info=loop_info,
                body_value=value,
                loop_value=value,
                unit_name=unit.name,
                path_pred=TRUE,
            )

    visit(proc)

    visible = [a for a in arrays if symtab.is_formal(a)]
    summary.proc_value = conservative_value(
        symtab, visible, _assigned_scalars(unit.body)
    )
    return summary
