"""Content-addressed, on-disk procedure-summary cache.

The analysis pipeline is bottom-up over the call graph, which makes it
naturally incremental: a procedure's analysis result is a pure function
of

* the canonical source text of the procedure (``unit_str`` of its AST,
  after scalar propagation — exactly what the walker sees),
* the cache keys of its callees (transitively capturing their content),
* the :class:`~repro.arraydf.options.AnalysisOptions` in force, and
* the cache format/analysis version.

:func:`unit_key` hashes those into one hex digest.  Editing one
procedure changes its key and (through the callee-key chaining) the keys
of its transitive callers — the *dirty subtree* — while every other
procedure's key, and therefore its cached summary and cached loop
decisions, stays valid.

Entries are pickles of interned analysis values; the hash-consing
substrate defines ``__reduce__`` on every interned class, so loading an
entry re-interns its parts and warm results are structurally (and
therefore textually) identical to a cold analysis.

The cache degrades, never fails: unreadable or corrupt entries count as
misses (``cache.load_error``) and are deleted best-effort; write
failures are swallowed (``cache.store_error``).  Degraded
(budget-demoted) results are **never stored** — the cache only holds
full-fidelity analyses, so a warm hit can never resurrect a degraded
answer.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro import perf

#: bump when the analysis or the payload layout changes incompatibly
CACHE_VERSION = "1"

#: environment variable naming the default cache directory; worker
#: processes (fork or spawn) inherit it, so ``--cache DIR`` set once in
#: the driver is honored by the whole pool
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

for _name in (
    "cache.summary_hit",
    "cache.summary_miss",
    "cache.decisions_hit",
    "cache.decisions_miss",
    "cache.program_hit",
    "cache.program_miss",
    "cache.store",
    "cache.load_error",
    "cache.store_error",
):
    perf.declare(_name)


def options_fingerprint(opts) -> str:
    """A stable text fingerprint of an options dataclass."""
    parts = [
        f"{f.name}={getattr(opts, f.name)!r}" for f in fields(opts)
    ]
    return ";".join(parts)


def unit_key(
    unit_source: str,
    callee_keys: Sequence[Tuple[str, str]],
    opts,
) -> str:
    """Content key for one procedure's analysis artifacts."""
    h = hashlib.sha256()
    h.update(CACHE_VERSION.encode())
    h.update(b"\x00")
    h.update(options_fingerprint(opts).encode())
    h.update(b"\x00")
    h.update(unit_source.encode())
    for name, key in sorted(callee_keys):
        h.update(b"\x00")
        h.update(name.encode())
        h.update(b"\x01")
        h.update(key.encode())
    return h.hexdigest()


def program_key(program, opts) -> str:
    """Content key for one whole program's loop decisions.

    Hashes the canonical source of every unit (pre scalar propagation —
    propagation is deterministic and fingerprinted via *opts*), so any
    edit anywhere invalidates the program-level entry while the
    per-unit entries keep serving the untouched subtree.
    """
    from repro.lang.prettyprint import unit_str

    h = hashlib.sha256()
    h.update(CACHE_VERSION.encode())
    h.update(b"\x00")
    h.update(options_fingerprint(opts).encode())
    h.update(b"\x00")
    h.update(program.main.encode())
    for name in sorted(program.units):
        h.update(b"\x00")
        h.update(name.encode())
        h.update(b"\x01")
        h.update(unit_str(program.units[name]).encode())
    return h.hexdigest()


class SummaryCache:
    """On-disk store of per-procedure analysis artifacts.

    Three kinds of artifact are stored: ``"summary"`` (the
    :class:`~repro.arraydf.analysis.UnitSummary`) and ``"decisions"``
    (the driver's per-loop :class:`~repro.partests.driver.LoopResult`
    list) share one key; ``"screen"`` (the tier-0 dependence screen's
    :class:`~repro.arraydf.screen.UnitScreen` rows) uses the unit's own
    content key with no callee components — the screen never looks
    across calls, and being pure syntax it is stored even on
    budget-degraded runs.  Writes are atomic (temp file + ``os.replace``), so
    concurrent analyzers — the ``--jobs`` pool, several ``serve``
    workers, or independent processes — may share a directory safely:
    at worst two processes compute the same entry and the last write
    wins with identical content.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str, kind: str) -> Path:
        return self.root / key[:2] / f"{key[2:]}.{kind}.pkl"

    def load(self, key: str, kind: str):
        """The stored payload, or ``None`` on miss/corruption."""
        path = self._path(key, kind)
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except FileNotFoundError:
            perf.bump(f"cache.{kind}_miss")
            return None
        except Exception:
            # unreadable/corrupt entry: treat as a miss, drop the file
            perf.bump(f"cache.{kind}_miss")
            perf.bump("cache.load_error")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        perf.bump(f"cache.{kind}_hit")
        return payload

    def store(self, key: str, kind: str, payload) -> None:
        """Atomically persist *payload*; failures degrade to no-ops."""
        path = self._path(key, kind)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            perf.bump("cache.store_error")
            return
        perf.bump("cache.store")

    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))


_default: Optional[SummaryCache] = None
_default_dir: Optional[str] = None


def set_default_cache_dir(path: Optional[str]) -> None:
    """Set (or clear) the process-wide default cache directory.

    The directory is exported via :data:`CACHE_DIR_ENV` so worker
    processes — forked or spawned — resolve the same default.
    """
    global _default, _default_dir
    _default = None
    _default_dir = path
    if path is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = str(path)


def default_cache() -> Optional[SummaryCache]:
    """The default :class:`SummaryCache`, or ``None`` when disabled.

    Resolution order: :func:`set_default_cache_dir`, then the
    :data:`CACHE_DIR_ENV` environment variable.
    """
    global _default, _default_dir
    path = _default_dir or os.environ.get(CACHE_DIR_ENV)
    if not path:
        return None
    if _default is None or str(_default.root) != str(path):
        _default = SummaryCache(path)
    return _default
