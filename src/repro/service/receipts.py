"""Per-job provenance receipts.

Every job the service finishes leaves a ``receipt.json`` next to its
result: a self-contained record of **what was analyzed, under which
knobs, with which budgets, and what it cost**.  Receipts answer the
operational questions a result alone cannot — "was the oracle on when
this shipped?", "did this answer degrade under its budget?", "is this
the same input we analyzed last week?" — without re-running anything.

A receipt has a **stable part** and an explicit ``timings`` section.
The stable part is a pure function of the job's inputs and the knobs in
effect, so two runs of the same job under the same configuration produce
byte-identical stable parts (the acceptance tests pin this); everything
volatile — wall-clock, perf-counter deltas, budget consumption, worker
identity — lives under ``timings`` and is excluded from the stability
contract.

Stable sections::

    schema       "repro.receipt/1"
    job          id, kind, priority
    inputs       program name / experiment id, the per-procedure
                 content keys (chained exactly like the summary cache:
                 source + callee keys + options), and a combined hash
                 recomputable from the receipt alone
    knobs        analysis options + fingerprint, every feature switch
                 (oracle / packed kernel / bytecode / screen), pipeline
                 on/off, executor and job count, cache attached?
    budgets      the limits *granted* (consumption is volatile → timings)
    degradation  the degraded flag and per-kind budget-trip counts
    result       terminal state and a deterministic result summary

:func:`validate_receipt` checks a parsed receipt against this schema and
recomputes the combined inputs hash from the recorded unit keys — a
receipt that cannot reproduce its own hash is corrupt.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

#: bump when the receipt layout changes incompatibly
RECEIPT_SCHEMA = "repro.receipt/1"

#: required top-level sections of every receipt
SECTIONS = (
    "schema",
    "job",
    "inputs",
    "knobs",
    "budgets",
    "degradation",
    "result",
    "timings",
)


# ----------------------------------------------------------------------
# inputs fingerprint
# ----------------------------------------------------------------------
def program_unit_keys(program, opts) -> Dict[str, str]:
    """Chained content keys for every procedure of *program*.

    Uses the same chaining scheme as the summary cache
    (:func:`repro.service.cache.unit_key`): a procedure's key covers its
    canonical source, its callees' keys (transitively, its whole
    subtree) and the analysis options — so the receipt pinpoints *which*
    procedure changed between two jobs, not just *that* something did.
    Computed bottom-up over the (acyclic) call graph; a pure function of
    source + options, independent of cache warmth or analysis outcome.
    """
    from repro.ir.callgraph import CallGraph
    from repro.lang.prettyprint import unit_str
    from repro.service.cache import unit_key

    graph = CallGraph(program)
    keys: Dict[str, str] = {}
    for name in graph.bottom_up_order():
        callee_keys = [(c, keys[c]) for c in sorted(graph.callees(name))]
        keys[name] = unit_key(
            unit_str(program.units[name]), callee_keys, opts
        )
    return keys


def combined_hash(inputs: Dict) -> str:
    """The inputs-section hash, recomputable from the receipt alone."""
    h = hashlib.sha256()
    h.update(str(inputs.get("program")).encode())
    h.update(b"\x00")
    h.update(str(inputs.get("which")).encode())
    for name, key in sorted((inputs.get("unit_keys") or {}).items()):
        h.update(b"\x00")
        h.update(name.encode())
        h.update(b"\x01")
        h.update(key.encode())
    return h.hexdigest()


def analyze_inputs(program, opts) -> Dict:
    """Inputs section for an ``analyze`` job."""
    inputs = {
        "program": program.main,
        "which": None,
        "unit_keys": program_unit_keys(program, opts),
    }
    inputs["combined"] = combined_hash(inputs)
    return inputs


def experiment_inputs(which: Optional[str]) -> Dict:
    """Inputs section for an ``experiment`` job."""
    inputs = {"program": None, "which": which, "unit_keys": {}}
    inputs["combined"] = combined_hash(inputs)
    return inputs


def empty_inputs() -> Dict:
    """Inputs section for a job that failed before its input existed."""
    inputs = {"program": None, "which": None, "unit_keys": {}}
    inputs["combined"] = combined_hash(inputs)
    return inputs


# ----------------------------------------------------------------------
# knobs
# ----------------------------------------------------------------------
def knobs_in_effect(
    options_name: Optional[str],
    opts,
    executor: Optional[str],
    jobs: int,
) -> Dict:
    """Every switch that shaped this job's answer or its cost."""
    from repro import perf
    from repro.pipeline import executor_kind, pipeline_enabled
    from repro.service.cache import default_cache, options_fingerprint

    return {
        "options": options_name,
        "options_fingerprint": (
            options_fingerprint(opts) if opts is not None else None
        ),
        "pred_oracle": perf.pred_oracle_enabled(),
        "packed_kernel": perf.packed_kernel_enabled(),
        "bytecode": perf.bytecode_enabled(),
        "dep_screen": perf.dep_screen_enabled(),
        "pipeline": pipeline_enabled(),
        "executor": executor_kind(executor),
        "jobs": int(jobs),
        "cache": default_cache() is not None,
    }


# ----------------------------------------------------------------------
# assembly / serialization
# ----------------------------------------------------------------------
def build_receipt(
    job_id: str,
    kind: str,
    priority: int,
    inputs: Dict,
    knobs: Dict,
    budget_granted: Dict,
    degraded: bool,
    trips: Dict[str, int],
    result_summary: Dict,
    timings: Dict,
) -> Dict:
    """Assemble one receipt dict (stable sections + ``timings``)."""
    return {
        "schema": RECEIPT_SCHEMA,
        "job": {"id": job_id, "kind": kind, "priority": int(priority)},
        "inputs": inputs,
        "knobs": knobs,
        "budgets": {"granted": budget_granted},
        "degradation": {
            "degraded": bool(degraded),
            "trips": {k: int(v) for k, v in sorted(trips.items())},
        },
        "result": result_summary,
        "timings": timings,
    }


def stable_part(receipt: Dict) -> Dict:
    """The receipt minus its volatile ``timings`` section."""
    return {k: v for k, v in receipt.items() if k != "timings"}


def receipt_bytes(receipt: Dict) -> bytes:
    """The canonical on-disk encoding (sorted keys, compact, newline).

    Compact separators keep json on its C encoder (``indent`` forces
    the pure-Python path, ~3x slower) — the receipt write is on every
    job's critical path.  Pipe through ``python -m json.tool`` to read
    one by eye.
    """
    return (
        json.dumps(receipt, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def validate_receipt(receipt: Dict) -> List[str]:
    """Schema-check a parsed receipt; returns problems (empty = valid).

    Beyond shape, this *recomputes* the combined inputs hash from the
    recorded unit keys — a receipt must reproduce its own inputs hash on
    re-read or it is corrupt.
    """
    problems: List[str] = []
    if not isinstance(receipt, dict):
        return ["receipt is not an object"]
    if receipt.get("schema") != RECEIPT_SCHEMA:
        problems.append(
            f"schema is {receipt.get('schema')!r}, expected {RECEIPT_SCHEMA!r}"
        )
    for section in SECTIONS:
        if section == "schema":
            continue
        if not isinstance(receipt.get(section), dict):
            problems.append(f"missing or non-object section {section!r}")
    if problems:
        return problems

    job = receipt["job"]
    for field in ("id", "kind"):
        if not isinstance(job.get(field), str):
            problems.append(f"job.{field} missing or not a string")
    if job.get("kind") not in ("analyze", "experiment", None):
        problems.append(f"job.kind {job.get('kind')!r} is unknown")

    inputs = receipt["inputs"]
    if not isinstance(inputs.get("unit_keys"), dict):
        problems.append("inputs.unit_keys missing or not an object")
    elif inputs.get("combined") != combined_hash(inputs):
        problems.append(
            "inputs.combined does not reproduce from the recorded unit keys"
        )

    knobs = receipt["knobs"]
    for field in ("pred_oracle", "packed_kernel", "bytecode", "dep_screen",
                  "pipeline", "cache"):
        if not isinstance(knobs.get(field), bool):
            problems.append(f"knobs.{field} missing or not a boolean")
    if not isinstance(knobs.get("jobs"), int):
        problems.append("knobs.jobs missing or not an integer")

    if "granted" not in receipt["budgets"]:
        problems.append("budgets.granted missing")
    degradation = receipt["degradation"]
    if not isinstance(degradation.get("degraded"), bool):
        problems.append("degradation.degraded missing or not a boolean")
    if not isinstance(degradation.get("trips"), dict):
        problems.append("degradation.trips missing or not an object")
    if receipt["result"].get("state") not in ("done", "failed"):
        problems.append(
            f"result.state {receipt['result'].get('state')!r} is not terminal"
        )
    return problems
