"""HTTP front door for the job system (stdlib only, zero new deps).

``python -m repro serve --http :8080`` starts a
:class:`~http.server.ThreadingHTTPServer` in front of the persistent
job queue and a worker fleet.  The API surface:

``POST /v1/jobs``
    Submit a job.  The body is today's JSON-lines request object plus a
    ``"kind"`` field (``"analyze"``, the default, or ``"experiment"``).
    Answers ``202 {"id": "j00000001", "state": "queued"}``.  When the
    queue is at capacity the server answers ``429`` with a
    ``Retry-After`` header — backpressure instead of unbounded buffering.

``POST /v1/batch``
    Submit many jobs in one request: ``{"kind": ..., "priority": ...,
    "jobs": [<request object>, ...]}``.  Answers ``202 {"ok": true,
    "ids": [...], "state": "queued"}``.  Admission is all-or-nothing
    against capacity (429 if the whole batch does not fit); each job is
    then claimed, executed and receipted individually, exactly as if
    submitted one by one — the batch path only removes per-job
    submit/journal/wake-up overhead (see ``docs/SERVICE.md``).

``GET /v1/jobs/<id>``
    Job status: ``{"id", "state"}`` with ``state`` one of ``queued`` /
    ``running`` / ``done`` / ``failed``, plus the full ``response``
    object once terminal.

``GET /v1/jobs/<id>/receipt``
    The job's provenance receipt (404 until the job is terminal).

``GET /v1/healthz``
    Liveness: ``{"ok": true}`` (and ``"draining": true`` once a
    shutdown began — load balancers should stop sending work).

``GET /v1/stats``
    Queue depth and states, fleet utilization, and the service-relevant
    perf counters and cache hit rates.

Shutdown (SIGTERM/SIGINT) is a graceful drain: the listener stops
accepting, the fleet stops claiming, running jobs finish, receipts are
written — then the process exits.
"""

from __future__ import annotations

import json
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro import perf
from repro.service.queue import JobQueue, QueueFull
from repro.service.receipts import receipt_bytes
from repro.service.workers import WorkerFleet

perf.declare("http.requests")
perf.declare("http.rejected")

#: counter prefixes surfaced by ``GET /v1/stats``
_STATS_PREFIXES = ("job.", "queue.", "worker.", "http.", "cache.", "budget.")

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)(/receipt)?$")


def service_stats(queue: JobQueue, fleet: Optional[WorkerFleet]) -> Dict:
    """The ``GET /v1/stats`` payload (also used by tests directly)."""
    snap = perf.snapshot()
    counters = {
        k: v
        for k, v in snap["counters"].items()
        if k.startswith(_STATS_PREFIXES)
    }
    return {
        "queue": queue.stats(),
        "fleet": fleet.stats() if fleet is not None else None,
        "counters": counters,
        "caches": snap["caches"],
    }


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler; the server object carries queue + fleet."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _send_json(
        self, code: int, payload: Dict, headers: Optional[Dict] = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # stay quiet; the journal is the record

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        perf.bump("http.requests")
        path = self.path.rstrip("/")
        if path not in ("/v1/jobs", "/v1/batch"):
            self._send_json(404, {"ok": False, "error": "not found"})
            return
        if self.server.draining:
            self._send_json(
                503,
                {"ok": False, "error": "draining"},
                headers={"Retry-After": "5"},
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            body = json.loads(raw or b"null")
        except ValueError as exc:
            self._send_json(400, {"ok": False, "error": f"bad JSON: {exc}"})
            return
        if not isinstance(body, dict):
            self._send_json(
                400, {"ok": False, "error": "request must be an object"}
            )
            return
        kind = body.pop("kind", "analyze")
        priority = body.pop("priority", 0)
        try:
            if path == "/v1/batch":
                jobs = body.get("jobs")
                if not isinstance(jobs, list) or not jobs:
                    raise ValueError(
                        "batch request needs a non-empty 'jobs' array"
                    )
                if not all(isinstance(j, dict) for j in jobs):
                    raise ValueError("every batch job must be an object")
                ids = self.server.queue.submit_batch(
                    kind, jobs, priority=priority
                )
                self._send_json(
                    202, {"ok": True, "ids": ids, "state": "queued"}
                )
                return
            job_id = self.server.queue.submit(kind, body, priority=priority)
        except QueueFull as exc:
            perf.bump("http.rejected")
            self._send_json(
                429,
                {
                    "ok": False,
                    "error": str(exc),
                    "retry_after": exc.retry_after,
                },
                headers={"Retry-After": str(int(exc.retry_after) or 1)},
            )
            return
        except (ValueError, TypeError) as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})
            return
        self._send_json(202, {"ok": True, "id": job_id, "state": "queued"})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        perf.bump("http.requests")
        path = self.path.split("?", 1)[0]
        if path == "/v1/healthz":
            self._send_json(
                200, {"ok": True, "draining": self.server.draining}
            )
            return
        if path == "/v1/stats":
            self._send_json(
                200, service_stats(self.server.queue, self.server.fleet)
            )
            return
        m = _JOB_PATH.match(path)
        if m is None:
            self._send_json(404, {"ok": False, "error": "not found"})
            return
        job_id, want_receipt = m.group(1), bool(m.group(2))
        queue = self.server.queue
        state = queue.state(job_id)
        if state is None:
            self._send_json(
                404, {"ok": False, "error": f"unknown job {job_id!r}"}
            )
            return
        if want_receipt:
            receipt = queue.receipt(job_id)
            if receipt is None:
                self._send_json(
                    404,
                    {
                        "ok": False,
                        "error": f"job {job_id!r} has no receipt yet",
                        "state": state,
                    },
                )
                return
            body = receipt_bytes(receipt)
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        payload: Dict = {"id": job_id, "state": state}
        if state in ("done", "failed"):
            payload["response"] = queue.response(job_id)
        self._send_json(200, payload)


class ServiceServer(ThreadingHTTPServer):
    """The front door: an HTTP listener over one queue + fleet."""

    daemon_threads = True

    def __init__(self, addr: Tuple[str, int], queue: JobQueue, fleet):
        super().__init__(addr, ServiceHandler)
        self.queue = queue
        self.fleet = fleet
        self.draining = False


def parse_addr(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` → ``(host, port)``."""
    spec = str(spec)
    if ":" in spec:
        host, _, port = spec.rpartition(":")
    else:
        host, port = "", spec
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ValueError(f"bad --http address {spec!r} (want HOST:PORT)")


def serve_http(
    addr: str,
    queue_dir: str,
    workers: int = 1,
    capacity: int = 256,
    pipeline_jobs: Optional[int] = 1,
    pipeline_executor: Optional[str] = None,
    cache_dir: Optional[str] = None,
    install_signals: bool = True,
    ready: Optional[threading.Event] = None,
) -> int:
    """Run the HTTP service until SIGTERM/SIGINT, then drain.

    Returns the number of jobs the fleet completed.  *ready* (tests) is
    set once the listener is bound and the fleet is running.
    """
    if cache_dir is not None:
        from repro.service.cache import set_default_cache_dir

        set_default_cache_dir(cache_dir)
    queue = JobQueue(queue_dir, capacity=capacity)
    fleet = WorkerFleet(
        queue,
        workers=workers,
        pipeline_jobs=pipeline_jobs,
        pipeline_executor=pipeline_executor,
    ).start()
    server = ServiceServer(parse_addr(addr), queue, fleet)

    stop = threading.Event()

    def request_stop(*_args) -> None:
        server.draining = True
        stop.set()

    if install_signals:
        signal.signal(signal.SIGTERM, request_stop)
        signal.signal(signal.SIGINT, request_stop)

    listener = threading.Thread(
        target=server.serve_forever, name="http-listener", daemon=True
    )
    listener.start()
    if ready is not None:
        ready.set()
    try:
        stop.wait()
    finally:
        server.draining = True
        server.shutdown()
        listener.join(5.0)
        server.server_close()
        fleet.drain()
    return fleet.stats()["completed"]
