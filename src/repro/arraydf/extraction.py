"""Predicate extraction.

``pred_subtract`` is the predicated counterpart of the exposed-read
subtraction ``E − M``.  Beyond the exact difference it *extracts* the
breaking condition under which the difference is empty:

    each residual piece is non-empty only if its projection onto the
    symbolic parameters (dimension variables eliminated) is satisfiable;
    the conjunction of the negated piece-conditions is therefore a
    sufficient condition for ``E − M = ∅``.

This is how the analysis discovers conditions like ``d >= 2`` ("the
first loop containing the writes to help would not execute if d < 2",
Figure 1 of the paper) without any pattern matching — they fall out of
the region algebra.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.arraydf.options import AnalysisOptions
from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import LinAtom
from repro.predicates.formula import (
    Predicate,
    TRUE,
    p_and,
    p_atom,
    p_not,
)
from repro.predicates.simplify import is_unsat
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.terms import is_dim_var

# Extraction gives up beyond this many residual pieces / atoms — huge
# breaking conditions would never be profitable as run-time tests.
MAX_PIECES = 6
MAX_ATOMS = 8


def breaking_condition(pieces: List[ArrayRegion]) -> Optional[Predicate]:
    """The extracted condition under which every piece is empty.

    Returns ``None`` when extraction fails (a piece is unconditionally
    non-empty, or the condition would be too large).
    """
    if len(pieces) > MAX_PIECES:
        return None
    negations: List[Predicate] = []
    for piece in pieces:
        dim_vars = [v for v in piece.system.variables() if is_dim_var(v)]
        param_sys = eliminate_all(piece.system, dim_vars)
        if param_sys.is_universe():
            return None  # piece non-empty for every parameter value
        if len(param_sys) > MAX_ATOMS:
            return None
        conj = p_and(*(p_atom(LinAtom(c)) for c in param_sys))
        negations.append(p_not(conj))
    return p_and(*negations)


def pred_subtract(
    exposed: SummarySet, must_writes: SummarySet, opts: AnalysisOptions
) -> List[Tuple[Predicate, SummarySet]]:
    """Guarded alternatives for ``exposed − must_writes``.

    Always includes the exact unguarded difference; with extraction
    enabled and a non-empty difference, additionally the ⟨breaking
    condition, ∅⟩ alternative.
    """
    difference = exposed.subtract(must_writes)
    if difference.is_empty():
        return [(TRUE, difference)]
    out: List[Tuple[Predicate, SummarySet]] = []
    if opts.predicates and opts.extraction:
        all_pieces: List[ArrayRegion] = list(difference.all_regions())
        cond = breaking_condition(all_pieces)
        if (
            cond is not None
            and not cond.is_false()
            and not cond.is_true()
            # an unsat breaking condition can never fire at run time and
            # its ⟨cond, ∅⟩ pair would be dedup-dropped downstream;
            # refuting it here (memoized) skips that plumbing entirely
            and not is_unsat(cond)
        ):
            out.append((cond, SummarySet.empty()))
    out.append((TRUE, difference))
    return out


def coverage_condition(
    exposed: SummarySet, must_writes: SummarySet
) -> Optional[Predicate]:
    """The extracted condition under which *must_writes* covers *exposed*.

    ``TRUE`` when coverage holds outright; ``None`` when extraction
    fails.  Used by the privatization test.
    """
    difference = exposed.subtract(must_writes)
    if difference.is_empty():
        return TRUE
    return breaking_condition(list(difference.all_regions()))
