"""Analysis configuration.

One option set drives both analyses and every ablation in the benchmark
harness; the named constructors are the configurations the paper
evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class AnalysisOptions:
    """Switches for the array data-flow analysis.

    ``predicates``
        Master switch: attach predicates to data-flow values at control
        flow (the predicated analysis).  Off = base SUIF analysis.
    ``embedding``
        Predicate embedding: fold affine predicate atoms into region
        inequality systems before projection/subtraction.
    ``extraction``
        Predicate extraction: derive breaking conditions from region
        subtraction and size/divisibility conditions from reshape.
    ``runtime_tests``
        Derive run-time tests from residual predicates (off = use
        predicates for compile-time proofs only, the Gu/Li/Lee-style
        comparator).
    ``interprocedural``
        Translate callee summaries at call sites (off = calls
        conservatively touch every argument array).
    ``scalar_propagation``
        Forward-propagate straight-line scalar definitions before the
        array analysis (the scalar symbolic analysis SUIF ran first).
    ``max_guarded``
        Beam width for guarded-alternative lists.
    ``region_budget``
        Per-array region budget before hull widening.
    """

    predicates: bool = True
    embedding: bool = True
    extraction: bool = True
    runtime_tests: bool = True
    interprocedural: bool = True
    scalar_propagation: bool = True
    max_guarded: int = 6
    region_budget: int = 12

    @staticmethod
    def base() -> "AnalysisOptions":
        """The non-predicated SUIF baseline (scalar propagation stays on:
        SUIF had symbolic scalar analysis before predicates existed)."""
        return AnalysisOptions(
            predicates=False,
            embedding=False,
            extraction=False,
            runtime_tests=False,
        )

    @staticmethod
    def predicated() -> "AnalysisOptions":
        """The paper's full analysis."""
        return AnalysisOptions()

    @staticmethod
    def compile_time_only() -> "AnalysisOptions":
        """Predicated analysis without run-time tests (prior-work mode)."""
        return AnalysisOptions(runtime_tests=False)

    def without(self, **kwargs) -> "AnalysisOptions":
        """Ablation helper: ``opts.without(embedding=False)``."""
        return replace(self, **kwargs)
