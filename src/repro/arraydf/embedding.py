"""Predicate embedding.

Affine predicate atoms live in the same integer-linear domain as region
constraints, so a guard like ``i > 5`` can be *embedded* — conjoined
into the region systems of the guarded summary — after which the guard
is discharged.  "In a framework that supports both predicate embedding
and extraction, it is equivalent for integer constraints to appear
either in the predicate or in the data-flow value" (Section 5).

Embedding is what lets iteration-dependent guards survive loop
projection: the guard becomes part of the projected region instead of
being weakened away.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.linalg.system import LinearSystem
from repro.predicates.atoms import LinAtom
from repro.predicates.formula import (
    AndPred,
    Atom,
    Predicate,
    TRUE,
    p_and,
)
from repro.regions.summary import SummarySet


def split_linear_conjuncts(
    pred: Predicate,
) -> Optional[Tuple[LinearSystem, Predicate]]:
    """Split a conjunction into (embeddable linear system, residue).

    Works on TRUE, single literals and conjunctions; returns ``None``
    for disjunctive shapes (embedding a disjunction would require region
    splitting, which the budget disallows).
    """
    if pred.is_true():
        return LinearSystem.universe(), TRUE
    if isinstance(pred, Atom):
        if isinstance(pred.atom, LinAtom):
            return LinearSystem([pred.atom.constraint]), TRUE
        return LinearSystem.universe(), pred
    if isinstance(pred, AndPred):
        constraints = []
        residue: List[Predicate] = []
        for op in pred.operands:
            if isinstance(op, Atom) and isinstance(op.atom, LinAtom):
                constraints.append(op.atom.constraint)
            else:
                residue.append(op)
        return LinearSystem(constraints), p_and(*residue)
    if pred.is_false():
        return None
    # NotPred over opaque/div, OrPred: not embeddable as a conjunction
    if hasattr(pred, "operand") or hasattr(pred, "operands"):
        return LinearSystem.universe(), pred
    return None


def embed_into_summary(
    pred: Predicate, summary: SummarySet
) -> Tuple[Predicate, SummarySet]:
    """Embed the linear conjuncts of *pred* into *summary*.

    Returns the residual (non-embeddable) predicate and the constrained
    summary.  On non-conjunctive predicates, returns the input unchanged.

    NOTE: this transformation alone is only sound for *must* (under-
    approximating) summaries — restricting to the iterations where the
    guard held can only shrink a must-set.  For over-approximating
    summaries use :func:`split_guard_cases`, which also covers the
    complement iterations with the default summary.
    """
    split = split_linear_conjuncts(pred)
    if split is None:
        return pred, summary
    system, residue = split
    if system.is_universe():
        return residue, summary
    return residue, summary.conjoin_all(system)


def split_guard_cases(
    pred: Predicate,
    summary: SummarySet,
    default_summary: SummarySet,
    volatile: frozenset,
    embedding: bool,
):
    """Decompose a guarded over-approximation for use across a loop.

    A pair ⟨p, S⟩ bounds accesses only on iterations where ``p`` holds.
    When ``p`` mentions loop-varying names (*volatile*), it cannot serve
    as a loop-entry guard; its index-dependent **linear** conjuncts
    ``L`` are instead *embedded*, yielding case systems that partition
    the iterations::

        [(S, L)] + [(default, ¬L piece_k)]     (disjoint pieces of ¬L)

    Returns ``(residual_pred, [(summary, system), …])`` where the
    residual predicate is loop-invariant and the cases jointly bound
    every iteration, or ``None`` when the alternative is unusable (a
    volatile non-linear conjunct, or embedding disabled).
    """
    from repro.predicates.atoms import LinAtom

    if pred.is_true() or not (pred.variables() & volatile):
        return pred, [(summary, LinearSystem.universe())]
    operands = list(pred.operands) if isinstance(pred, AndPred) else [pred]
    kept: List[Predicate] = []
    constraints = []
    for op in operands:
        if not (op.variables() & volatile):
            kept.append(op)
            continue
        if (
            embedding
            and isinstance(op, Atom)
            and isinstance(op.atom, LinAtom)
        ):
            constraints.append(op.atom.constraint)
        else:
            return None
    L = LinearSystem(constraints)
    cases = [(summary.conjoin_all(L), L)]
    # disjoint complement pieces: ¬(c1 ∧ … ∧ ck) = ⋃k c1…c(k-1) ∧ ¬ck
    from repro.regions.subtract import _complement_pieces

    prefix = LinearSystem.universe()
    for c in L:
        for neg in _complement_pieces(c):
            piece = prefix & LinearSystem([neg])
            cases.append((default_summary.conjoin_all(piece), piece))
        prefix = prefix & LinearSystem([c])
    return p_and(*kept), cases
