"""Tier-0 graph-based dependence screen.

A lightweight dependence identifier (after Alluru et al.'s graph-based
data-dependence framework) that runs *before* the predicated array
data-flow analysis.  For each loop it builds a small access graph from
cheap syntactic/affine facts — distinct array names never conflict,
read-only arrays carry no cross-iteration dependence, and accesses
whose subscripts provably move with the loop index are disjoint between
iterations — and classifies the loop:

``independent``
    every written array has a *witness dimension*: a subscript position
    where all of the array's accesses use the same loop-variant affine
    expression, so any two iterations touch provably disjoint elements
    (and the scalar story is clean: no exposed scalar flow, no
    reductions);
``not_candidate``
    ineligible for parallelization for a reason reproducible from
    syntax alone (I/O, early return, variant bounds, non-constant step);
``unknown``
    everything else — the full analysis proceeds unchanged.

Soundness contract (proven by the differential sweep in
``tests/integration/test_screen_soundness.py``): a loop screened
``independent`` is always one the full predicated analysis proves
parallel outright — the screen's witness implies that every conflict
system the dependence test would build contains ``d_k = f(i1) ∧
d_k = f(i2) ∧ i1 < i2`` with ``f`` loop-variant affine, which is
rationally infeasible.  The screen therefore synthesizes the *exact*
decision row ``decide_loop`` would produce (status ``parallel``,
condition ``TRUE``, per-array verdicts ``ArrayVerdict(a, TRUE,
FALSE)``), letting the pipeline skip region summarization for units it
covers completely (see :class:`repro.pipeline.passes.ScreenPass`).

The screen never consults budgets — it is pure syntax — and is gated by
``REPRO_DEP_SCREEN`` / :func:`repro.perf.set_dep_screen` (default on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import perf
from repro.ir.exprtools import to_affine
from repro.ir.loopinfo import LoopInfo, collect_loop_info
from repro.ir.regiongraph import LoopRegion, ProcRegion, build_region_tree
from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    DoLoop,
    Subroutine,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.predicates.formula import FALSE, TRUE

for _name in (
    "screen.independent",
    "screen.unknown",
    "screen.agree",
    "screen.disagree",
    "screen.saved_units",
):
    perf.declare(_name)

#: cap on per-array accesses the screen reasons about; beyond it the
#: analysis's region unions may hull-widen (region budget) and the
#: witness argument no longer tracks what the summaries actually hold
MAX_ACCESSES = 8


@dataclass
class AccessGraph:
    """The screen's per-loop dependence graph for one written array.

    Nodes are the distinct accesses (affine subscript signatures);
    ``witness_dim`` is the subscript position proving every
    cross-iteration pair disjoint, or ``None`` when conflict edges
    remain and the array stays with the full analysis.
    """

    array: str
    accesses: List[Tuple] = field(default_factory=list)
    witness_dim: Optional[int] = None

    @property
    def independent(self) -> bool:
        return self.witness_dim is not None


@dataclass
class UnitScreen:
    """Screen output for one unit: per-loop verdicts + pre-made rows."""

    unit_name: str
    verdicts: Dict[str, str]  # label -> independent | unknown | not_candidate
    rows: Dict[str, dict]  # label -> synthesized decision row
    order: List[str]  # loop labels, summary (post-)order
    full_cover: bool  # every loop has a pre-made row
    skip_summary: bool = False  # derived: full_cover and no callers

    @property
    def independent_labels(self) -> List[str]:
        return [l for l, v in self.verdicts.items() if v == "independent"]


class ScreenedUnit:
    """Sentinel summary for a unit whose data-flow walk was skipped."""

    __slots__ = ("unit_name",)

    def __init__(self, unit_name: str) -> None:
        self.unit_name = unit_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScreenedUnit({self.unit_name})"


# ----------------------------------------------------------------------
# per-loop classification
# ----------------------------------------------------------------------


def _collect_accesses(loop: DoLoop) -> Tuple[Set[str], Dict[str, List[ArrayRef]]]:
    """All array references in the loop body, grouped by array name.

    Over-collects relative to the analysis (which ignores reads in
    branch conditions and loop bounds) — a superset can only make the
    screen more conservative, never unsound.
    """
    written: Set[str] = set()
    refs: Dict[str, List[ArrayRef]] = {}
    for s in walk_stmts(loop.body):
        if isinstance(s, Assign) and isinstance(s.target, ArrayRef):
            written.add(s.target.name)
        for e in stmt_exprs(s):
            for node in walk_exprs(e):
                if isinstance(node, ArrayRef):
                    refs.setdefault(node.name, []).append(node)
    return written, refs


def _witness_dim(
    accesses: List[ArrayRef], index: str, variant: Set[str]
) -> Optional[int]:
    """A subscript dimension proving cross-iteration disjointness.

    Dimension ``k`` is a witness when every access subscripts it with
    one and the same affine expression ``f``, ``f`` moves with the loop
    index (non-zero coefficient) and mentions no other variable the
    loop writes — then any conflict system conjoins ``d_k = f(i1)``
    with ``d_k = f(i2)`` and ``i1 < i2``, which has no rational
    solution.
    """
    if not accesses:
        return None
    ndims = len(accesses[0].subscripts)
    if any(len(a.subscripts) != ndims for a in accesses):
        return None
    for k in range(ndims):
        f = to_affine(accesses[0].subscripts[k])
        if f is None:
            continue
        coeff = dict(f.terms()).get(index)
        if not coeff:
            continue
        if (set(f.variables()) - {index}) & variant:
            continue
        if all(to_affine(a.subscripts[k]) == f for a in accesses[1:]):
            return k
    return None


def _inner_loops_nonempty(loop: DoLoop) -> bool:
    """Reject constant-bounds inner loops that provably never run.

    An inner loop with zero iterations contributes nothing to the outer
    body's summary, so an array written only under it would vanish from
    the analysis's write set while the screen still predicts a verdict
    for it.
    """
    for s in walk_stmts(loop.body):
        if not isinstance(s, DoLoop):
            continue
        lo, hi = to_affine(s.lo), to_affine(s.hi)
        step = to_affine(s.step) if s.step is not None else None
        if lo is None or hi is None or not lo.is_constant() or not hi.is_constant():
            continue
        down = step is not None and step.is_constant() and step.constant < 0
        if (hi.constant < lo.constant) if not down else (lo.constant < hi.constant):
            return False
    return True


def _scalar_classes(
    loop: DoLoop, info: LoopInfo, symtab
) -> Tuple[Set[str], Set[str], Set[str]]:
    """(obstacles, reductions, privates) — the dependence test's scalar
    classification, reproduced from syntactic facts.

    For call-free loops ``info.scalar_writes`` equals the body value's
    scalar write set, so this matches ``test_loop`` exactly.
    """
    inner_indices = {
        s.var for s in walk_stmts(loop.body) if isinstance(s, DoLoop)
    }
    obstacles: Set[str] = set()
    reductions: Set[str] = set()
    privates: Set[str] = set()
    for name in sorted(info.scalar_writes):
        if name == loop.var or name in inner_indices:
            continue
        if not symtab.is_scalar(name):
            continue
        if name in info.reductions:
            reductions.add(name)
        elif name in info.scalar_exposed_reads:
            obstacles.add(name)
        else:
            privates.add(name)
    return obstacles, reductions, privates


def screen_loop(
    region: LoopRegion, info: LoopInfo, symtab
) -> Tuple[str, Optional[dict], List[AccessGraph]]:
    """Classify one loop; returns (verdict, row-or-None, access graphs).

    The row, when present, is exactly the dict
    :func:`repro.partests.driver._decision_rows` would produce for this
    loop — either a ``not_candidate`` row or a screened ``parallel``
    row.
    """
    loop = region.stmt
    depth = region.loop_depth()
    if not info.is_candidate:
        reason = (
            "io" if info.has_io
            else "return" if info.has_return
            else "bounds" if not info.bounds_invariant
            else "step"
        )
        row = _row(loop.label, "not_candidate", reason=reason, depth=depth)
        return "not_candidate", row, []

    if info.has_calls or not _inner_loops_nonempty(loop):
        return "unknown", None, []

    obstacles, reductions, privates = _scalar_classes(loop, info, symtab)
    if obstacles or reductions:
        return "unknown", None, []

    written, refs = _collect_accesses(loop)
    variant = set(info.scalar_writes)
    graphs: List[AccessGraph] = []
    for array in sorted(written):
        accesses = refs.get(array, [])
        graph = AccessGraph(array, [tuple(a.subscripts) for a in accesses])
        if len(accesses) <= MAX_ACCESSES:
            graph.witness_dim = _witness_dim(accesses, loop.var, variant)
        graphs.append(graph)
    if not all(g.independent for g in graphs):
        return "unknown", None, graphs

    from repro.partests.dependence import ArrayVerdict

    row = _row(
        loop.label,
        "parallel",
        condition=TRUE,
        private_scalars=sorted(privates),
        depth=depth,
        verdict=(
            {a: ArrayVerdict(a, TRUE, FALSE) for a in sorted(written)},
            frozenset(),
            frozenset(),
            frozenset(privates),
        ),
    )
    return "independent", row, graphs


def _row(
    label: str,
    status: str,
    condition=None,
    private_scalars: Optional[List[str]] = None,
    reason: str = "",
    depth: int = 0,
    verdict=None,
) -> dict:
    return {
        "label": label,
        "status": status,
        "condition": condition,
        "runtime_test": None,
        "runtime_cost": 0,
        "private_arrays": [],
        "private_scalars": private_scalars or [],
        "reduction_scalars": [],
        "reason": reason,
        "depth": depth,
        "verdict": verdict,
    }


# ----------------------------------------------------------------------
# per-unit driver
# ----------------------------------------------------------------------


def _post_order_labels(proc: ProcRegion) -> List[Tuple[LoopRegion, str]]:
    """Loop regions in post-order — the order the data-flow walker
    inserts loop summaries (and hence the order decisions are emitted)."""
    out: List[Tuple[LoopRegion, str]] = []

    def visit(region) -> None:
        for c in region.children():
            visit(c)
        if isinstance(region, LoopRegion):
            out.append((region, region.stmt.label))

    visit(proc)
    return out


def screen_unit(unit: Subroutine, symtab) -> UnitScreen:
    """Screen every loop of one (scalar-propagated) unit."""
    proc = build_region_tree(unit)
    infos = collect_loop_info(proc)
    verdicts: Dict[str, str] = {}
    rows: Dict[str, dict] = {}
    order: List[str] = []
    for region, label in _post_order_labels(proc):
        verdict, row, _graphs = screen_loop(region, infos[region.stmt], symtab)
        verdicts[label] = verdict
        if row is not None:
            rows[label] = row
        order.append(label)
        perf.bump(
            "screen.independent" if verdict == "independent" else "screen.unknown"
        )
    return UnitScreen(
        unit_name=unit.name,
        verdicts=verdicts,
        rows=rows,
        order=order,
        full_cover=len(rows) == len(order),
    )


def empty_screen(unit_name: str) -> UnitScreen:
    """The screen-disabled result: nothing screened, nothing skipped."""
    return UnitScreen(
        unit_name=unit_name, verdicts={}, rows={}, order=[], full_cover=False
    )


def screen_payload(screen: UnitScreen) -> dict:
    """Cacheable projection: pure content facts, no derived flags.

    ``skip_summary`` depends on the *callers* of the unit, which the
    unit's own content key cannot see — it is recomputed after load.
    """
    return {
        "verdicts": screen.verdicts,
        "rows": screen.rows,
        "order": screen.order,
        "full_cover": screen.full_cover,
    }


def rebind_screen(payload, unit_name: str) -> Optional[UnitScreen]:
    """Rehydrate a cached screen payload; ``None`` on shape mismatch."""
    try:
        screen = UnitScreen(
            unit_name=unit_name,
            verdicts=dict(payload["verdicts"]),
            rows=dict(payload["rows"]),
            order=list(payload["order"]),
            full_cover=bool(payload["full_cover"]),
        )
    except (KeyError, TypeError, ValueError):
        return None
    for label, verdict in screen.verdicts.items():
        perf.bump(
            "screen.independent" if verdict == "independent" else "screen.unknown"
        )
    return screen
