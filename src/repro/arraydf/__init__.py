"""Array data-flow analyses.

``repro.arraydf`` implements both analyses the paper compares:

* the **base** SUIF-style interprocedural array data-flow analysis
  (``AnalysisOptions.base()``), which computes for every program region
  the may-read ``R``, may-write ``W``, must-write ``M`` and upward-exposed
  read ``E`` summary sets; and
* the paper's **predicated** analysis (``AnalysisOptions.predicated()``),
  which attaches predicates to the must-write and exposed-read values,
  embeds affine predicates into region systems (*predicate embedding*),
  extracts breaking conditions from region subtraction and
  interprocedural reshape (*predicate extraction*), and produces the
  guarded values from which run-time parallelization tests are derived.
"""

from repro.arraydf.values import AccessValue, GuardedSummary
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.analysis import ArrayDataflow, LoopSummary, UnitSummary

__all__ = [
    "AccessValue",
    "GuardedSummary",
    "AnalysisOptions",
    "ArrayDataflow",
    "LoopSummary",
    "UnitSummary",
]
