"""The array data-flow analysis walker.

One implementation serves both analyses (base and predicated) under
:class:`~repro.arraydf.options.AnalysisOptions`.  The walker runs
bottom-up over the call graph and, within each unit, bottom-up over the
region tree:

* statement leaves produce :meth:`AccessValue.leaf` values from their
  array references;
* sequences fold with :func:`seq_compose` (the PredSubtract-powered
  exposed-read calculation);
* conditionals join with :func:`branch_join` (PredUnion), guarding the
  branch values with the derived branch predicate;
* loops translate the body value (a function of the index) into a loop
  value by projection over the iteration space — with predicate
  embedding for index-dependent guards, exact-only projection of
  must-writes, and the prior-iteration must-write subtraction for
  exposed reads;
* call sites splice in the callee's translated summary (``Reshape``).

For every loop the walker records a :class:`LoopSummary` carrying both
the per-iteration body value and the projected loop value — the
parallelization tests in :mod:`repro.partests` consume the former.

Two serving-substrate hooks wrap the per-unit walk:

* **summary cache** — with a :class:`~repro.service.cache.SummaryCache`,
  each unit's summary is stored under a content key (canonical unit
  source + callee keys + options); a warm run loads and *rebinds* the
  summary to the current AST instead of re-walking the unit.  Fresh
  generated names are drawn from a per-unit source so a unit's summary
  is a pure function of its key — cached and recomputed summaries are
  structurally identical.
* **budgets** — when the active :class:`~repro.service.budgets.Budget`
  trips mid-unit, the unit degrades to the conservative whole-array
  summary from :mod:`repro.service.degrade` (sound, never stored in the
  cache) instead of crashing; callers of a degraded unit are tainted and
  bypass the cache store as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import perf
from repro.arraydf.embedding import (
    embed_into_summary,
    split_guard_cases,
    split_linear_conjuncts,
)
from repro.arraydf.extraction import pred_subtract
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.values import (
    AccessValue,
    GuardedSummary,
    branch_join,
    guarded_value,
    seq_compose,
    seq_compose_all,
    _dedup_guarded,
)
from repro.ir.callgraph import CallGraph
from repro.ir.exprtools import cond_to_predicate, to_affine
from repro.ir.loopinfo import LoopInfo, collect_loop_info
from repro.ir.regiongraph import (
    CallRegion,
    IfRegion,
    LoopRegion,
    ProcRegion,
    Region,
    SeqRegion,
    StmtRegion,
    build_region_tree,
)
from repro.ir.symboltable import SymbolTable
from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    DoLoop,
    Expr,
    PrintStmt,
    Program,
    ReadStmt,
    Return,
    VarRef,
    walk_exprs,
)
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.predicates.formula import Predicate, TRUE, p_and
from repro.predicates.simplify import is_unsat
from repro.regions.region import ArrayRegion
from repro.regions.reshape import CallContext, translate_summary_set
from repro.regions.summary import SummarySet
from repro.service.budgets import BudgetExceeded, checkpoint
from repro.service.cache import SummaryCache, unit_key
from repro.symbolic.affine import AffineExpr
from repro.symbolic.terms import FreshNameSource


@dataclass
class LoopSummary:
    """Everything the parallelization tests need about one loop."""

    loop: DoLoop
    info: LoopInfo
    body_value: AccessValue  # per-iteration, as a function of the index
    loop_value: AccessValue  # projected across the iteration space
    unit_name: str = ""
    path_pred: Predicate = TRUE  # conjunction of tests reaching the loop
    #: the iteration-space projection was skipped (tier-0 screen proved
    #: the loop independent and nothing consumes the projected value);
    #: ``loop_value`` is a placeholder — reproject before reading it
    elided: bool = False

    @property
    def label(self) -> str:
        return self.loop.label


@dataclass
class UnitSummary:
    """Analysis results for one program unit."""

    unit_name: str
    proc_value: AccessValue
    loops: Dict[DoLoop, LoopSummary] = field(default_factory=dict)
    loop_info: Dict[DoLoop, LoopInfo] = field(default_factory=dict)


class ArrayDataflow:
    """The interprocedural array data-flow analysis."""

    def __init__(
        self,
        program: Program,
        opts: Optional[AnalysisOptions] = None,
        cache: Optional[SummaryCache] = None,
        propagated: bool = False,
    ):
        """*propagated* marks *program* as already scalar-propagated (the
        pipeline runs propagation as its own pass); without it the
        walker propagates here, exactly as the legacy entry point did."""
        self.opts = opts or AnalysisOptions.predicated()
        if self.opts.scalar_propagation and not propagated:
            from repro.ir.scalarprop import propagate_scalars

            program = propagate_scalars(program)
        self.program = program
        self.callgraph = CallGraph(program)
        self.symtabs: Dict[str, SymbolTable] = {
            name: SymbolTable(unit) for name, unit in program.units.items()
        }
        self.units: Dict[str, UnitSummary] = {}
        self.cache = cache
        #: content key per analyzed unit (filled even without a cache
        #: only when one is attached; callers use it for decision caching)
        self.unit_keys: Dict[str, str] = {}
        #: units whose summary (or a callee's) was budget-degraded;
        #: their results are conservative and must never be cached
        self.tainted_units: Set[str] = set()
        #: per-unit labels of loops whose iteration-space projection may
        #: be elided (tier-0 screen proved them independent *and* the
        #: unit is caller-free, so nothing reads the projected value);
        #: populated by the pipeline's screen pass — empty for the
        #: legacy path, which always walks in full
        self.screen_hints: Dict[str, frozenset] = {}
        self._stats = {"feasibility_calls": 0}

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> "ArrayDataflow":
        for name in self.callgraph.bottom_up_order():
            self.run_unit(name)
        return self

    def run_unit(self, name: str) -> UnitSummary:
        """Analyze one unit and record its summary.

        Every callee of *name* must have been analyzed already (the
        caller — :meth:`run` or the pipeline scheduler — is responsible
        for the bottom-up order).  The walk itself keeps all mutable
        state in a per-call :class:`_UnitWalker`, so distinct units may
        be analyzed concurrently.
        """
        summary = self._run_unit(name)
        self.units[name] = summary
        return summary

    def _run_unit(self, name: str) -> UnitSummary:
        """Analyze one unit via the cache/budget wrapper.

        Summaries are keyed by canonical unit source + callee keys +
        options; a hit is *rebound* to the current parse (AST node ids
        are program-wide, so cached loop values are matched back to the
        current loops by their per-unit deterministic labels).  A
        :class:`BudgetExceeded` raised anywhere under the walk demotes
        the unit to the conservative whole-array summary — sound, and
        marked tainted so neither it nor its callers reach the cache.
        """
        unit = self.program.units[name]
        tainted = any(
            c in self.tainted_units for c in self.callgraph.callees(name)
        )
        key = None
        if self.cache is not None:
            from repro.lang.prettyprint import unit_str

            callee_keys = [
                (c, self.unit_keys.get(c, f"missing:{c}"))
                for c in sorted(self.callgraph.callees(name))
            ]
            key = unit_key(unit_str(unit), callee_keys, self.opts)
            self.unit_keys[name] = key
            if not tainted:
                payload = self.cache.load(key, "summary")
                if payload is not None:
                    rebound = self._rebind_summary(payload, unit)
                    if rebound is not None:
                        return rebound
        try:
            checkpoint()
            with perf.analysis_context(name):
                # fresh names are per-walk so a summary is a pure function
                # of (unit source, callee summaries, options) — a cache
                # requirement, and what makes concurrent walks safe
                summary = _UnitWalker(
                    self, self.screen_hints.get(name, frozenset())
                ).analyze(unit)
        except BudgetExceeded:
            from repro.service.degrade import conservative_unit_summary

            perf.bump("budget.degraded_unit")
            self.tainted_units.add(name)
            return conservative_unit_summary(
                unit, self.symtabs[name], self.opts
            )
        if tainted:
            self.tainted_units.add(name)
        elif (
            self.cache is not None
            and key is not None
            # an elided walk holds placeholder loop values; storing it
            # would leak them into runs (e.g. screen-off) that read them
            and not any(ls.elided for ls in summary.loops.values())
        ):
            self.cache.store(key, "summary", _summary_payload(summary))
        return summary

    def _rebind_summary(self, payload, unit) -> Optional[UnitSummary]:
        """Reattach a cached summary payload to the current parse.

        The payload carries only interned symbolic values keyed by loop
        label; the syntactic parts (region tree, loop info) are cheap
        and recomputed so every AST reference points into *this* parse.
        Returns ``None`` (treated as a miss) on any shape mismatch.
        """
        try:
            proc_value, loop_rows = payload
        except (TypeError, ValueError):
            return None
        proc = build_region_tree(unit)
        info = collect_loop_info(proc)
        by_label = {loop.label: loop for loop in info}
        summary = UnitSummary(unit.name, proc_value, {}, info)
        for label, body_value, loop_value, path_pred in loop_rows:
            loop = by_label.get(label)
            if loop is None:
                return None
            summary.loops[loop] = LoopSummary(
                loop=loop,
                info=info[loop],
                body_value=body_value,
                loop_value=(
                    AccessValue.empty() if loop_value is None else loop_value
                ),
                unit_name=unit.name,
                path_pred=path_pred,
                elided=loop_value is None,
            )
        return summary

    def all_loop_summaries(self) -> List[LoopSummary]:
        out: List[LoopSummary] = []
        for name in self.program.units:
            if name in self.units:
                out.extend(self.units[name].loops.values())
        return out


class _UnitWalker:
    """One unit's bottom-up region walk.

    A walker is created per :meth:`ArrayDataflow.run_unit` call and owns
    the only mutable walk state (the fresh-name source), so concurrent
    walks of *different* units — the pipeline's intra-program scheduler —
    share nothing writable.  Callee summaries are read from the parent
    dataflow's ``units`` table, which the scheduler guarantees is
    populated bottom-up.
    """

    __slots__ = ("opts", "symtabs", "units", "fresh", "elide")

    def __init__(
        self, dataflow: "ArrayDataflow", elide: frozenset = frozenset()
    ) -> None:
        self.opts = dataflow.opts
        self.symtabs = dataflow.symtabs
        self.units = dataflow.units
        self.fresh = FreshNameSource()
        #: labels whose loop projection may be skipped (screen hints)
        self.elide = elide

    @classmethod
    def _bare(cls, opts) -> "_UnitWalker":
        """A walker shim for reprojecting one loop outside any walk."""
        w = cls.__new__(cls)
        w.opts = opts
        w.symtabs = {}
        w.units = {}
        w.fresh = FreshNameSource()
        w.elide = frozenset()
        return w

    # ------------------------------------------------------------------
    # per-unit walk
    # ------------------------------------------------------------------
    def analyze(self, unit) -> UnitSummary:
        proc = build_region_tree(unit)
        info = collect_loop_info(proc)
        summary = UnitSummary(unit.name, AccessValue.empty(), {}, info)
        symtab = self.symtabs[unit.name]
        value = self._region_value(proc.body_seq, symtab, summary)
        # local arrays are invisible to callers
        local_arrays = [
            a for a in symtab.declared_arrays() if not symtab.is_formal(a)
        ]
        summary.proc_value = _drop_arrays_from_value(value, local_arrays)
        return summary

    def _region_value(
        self,
        region: Region,
        symtab: SymbolTable,
        out: UnitSummary,
        path_pred: Predicate = TRUE,
    ) -> AccessValue:
        if isinstance(region, SeqRegion):
            return seq_compose_all(
                (
                    self._region_value(c, symtab, out, path_pred)
                    for c in region.items
                ),
                self.opts,
            )
        if isinstance(region, StmtRegion):
            return self._stmt_value(region.stmt, symtab)
        if isinstance(region, IfRegion):
            cond = cond_to_predicate(region.stmt.cond)
            from repro.predicates.formula import p_not

            then_path = p_and(path_pred, cond) if self.opts.predicates else TRUE
            else_path = (
                p_and(path_pred, p_not(cond)) if self.opts.predicates else TRUE
            )
            v_then = self._region_value(
                region.then_seq, symtab, out, then_path
            )
            v_else = self._region_value(
                region.else_seq, symtab, out, else_path
            )
            return branch_join(cond, v_then, v_else, self.opts)
        if isinstance(region, LoopRegion):
            return self._loop_value(region, symtab, out, path_pred)
        if isinstance(region, CallRegion):
            return self._call_value(region, symtab)
        raise TypeError(f"unknown region {region!r}")

    # ------------------------------------------------------------------
    # leaves
    # ------------------------------------------------------------------
    def _expr_reads(self, expr: Expr, symtab: SymbolTable) -> List[ArrayRegion]:
        regions = []
        for e in walk_exprs(expr):
            if isinstance(e, ArrayRef):
                subs = [to_affine(s) for s in e.subscripts]
                regions.append(ArrayRegion.from_subscripts(e.name, subs))
        return regions

    def _stmt_value(self, stmt, symtab: SymbolTable) -> AccessValue:
        if isinstance(stmt, Assign):
            reads = list(self._expr_reads(stmt.value, symtab))
            scalar_writes: frozenset = frozenset()
            writes = SummarySet.empty()
            must = SummarySet.empty()
            if isinstance(stmt.target, ArrayRef):
                for s in stmt.target.subscripts:
                    reads.extend(self._expr_reads(s, symtab))
                subs = [to_affine(s) for s in stmt.target.subscripts]
                writes = SummarySet.of(
                    ArrayRegion.from_subscripts(stmt.target.name, subs)
                )
                # a non-affine subscript writes *one unknown* element: the
                # may-write is the whole array but nothing is definitely
                # written (a universe must-write would fabricate coverage)
                if all(s is not None for s in subs):
                    must = writes
            else:
                scalar_writes = frozenset([stmt.target.name])
            read_set = SummarySet.of(*reads)
            return AccessValue(
                r=read_set,
                w=writes,
                m=(GuardedSummary(TRUE, must),),
                e=(GuardedSummary(TRUE, read_set),),
                scalar_writes=scalar_writes,
            )
        if isinstance(stmt, ReadStmt):
            return AccessValue.leaf(
                SummarySet.empty(), SummarySet.empty(), frozenset(stmt.names)
            )
        if isinstance(stmt, PrintStmt):
            reads = []
            for a in stmt.args:
                if hasattr(a, "text"):
                    continue
                reads.extend(self._expr_reads(a, symtab))
            return AccessValue.leaf(SummarySet.of(*reads), SummarySet.empty())
        if isinstance(stmt, Return):
            return AccessValue.empty()
        raise TypeError(f"unexpected statement {stmt!r}")

    # ------------------------------------------------------------------
    # call sites
    # ------------------------------------------------------------------
    def _call_value(self, region: CallRegion, symtab: SymbolTable) -> AccessValue:
        call = region.stmt
        callee_name = call.name
        # scalars any argument expression reads
        arg_reads: List[ArrayRegion] = []
        for a in call.args:
            if isinstance(a, VarRef) and symtab.is_array(a.name):
                continue
            arg_reads.extend(self._expr_reads(a, symtab))

        if not self.opts.interprocedural or callee_name not in self.units:
            return self._conservative_call_value(call, symtab, arg_reads)

        callee_summary = self.units[callee_name].proc_value
        ctx = CallContext(
            call, symtab, self.symtabs[callee_name], self.fresh
        )
        r_alts = translate_summary_set(callee_summary.r, ctx, must=False)
        w_alts = translate_summary_set(callee_summary.w, ctx, must=False)
        m_default = callee_summary.must_default()
        e_default = callee_summary.exposed_default()
        m_alts = translate_summary_set(m_default, ctx, must=True)
        e_alts = translate_summary_set(e_default, ctx, must=False)
        if not (self.opts.predicates and self.opts.extraction):
            # the optimistic Reshape value is guarded by an *extracted*
            # size/divisibility predicate — unavailable without extraction
            m_alts = [a for a in m_alts if a[0].is_true()] or [
                (TRUE, SummarySet.empty())
            ]
            e_alts = [a for a in e_alts if a[0].is_true()]
            w_alts = [a for a in w_alts if a[0].is_true()]

        r = r_alts[-1][1].union(SummarySet.of(*arg_reads), self.opts.region_budget)
        w = w_alts[-1][1]
        # scalar formals are passed by value in this model: calls write no
        # caller scalars
        m = guarded_value(m_alts, w, "must", self.opts)
        e = guarded_value(e_alts, r, "exposed", self.opts)
        wg = guarded_value(w_alts, w, "exposed", self.opts)
        return AccessValue(
            r=r, w=w, m=m, e=e, w_alts=wg, scalar_writes=frozenset()
        )

    def _conservative_call_value(
        self, call, symtab: SymbolTable, arg_reads: List[ArrayRegion]
    ) -> AccessValue:
        """No summary available: every argument array may be read and
        written anywhere, nothing is definitely written."""
        touched: List[ArrayRegion] = list(arg_reads)
        for a in call.args:
            if isinstance(a, VarRef) and symtab.is_array(a.name):
                touched.append(
                    ArrayRegion.whole(
                        a.name, symtab.rank(a.name), symtab.affine_extents(a.name)
                    )
                )
        may = SummarySet.of(*touched)
        return AccessValue(
            r=may,
            w=may,
            m=(GuardedSummary(TRUE, SummarySet.empty()),),
            e=(GuardedSummary(TRUE, may),),
            scalar_writes=frozenset(),
        )

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def _loop_value(
        self,
        region: LoopRegion,
        symtab: SymbolTable,
        out: UnitSummary,
        path_pred: Predicate = TRUE,
    ) -> AccessValue:
        loop = region.stmt
        info = out.loop_info.get(loop)
        if info is None:  # loop discovered outside collect (defensive)
            from repro.ir.loopinfo import analyze_loop

            info = analyze_loop(region)
            out.loop_info[loop] = info
        body_value = self._region_value(
            region.body_seq, symtab, out, path_pred
        )
        # tier-0 screen elision: an outermost screened-independent loop
        # of a caller-free unit feeds its projected value only into the
        # unit's (unread) proc value — skip the whole iteration-space
        # projection and record a placeholder.  The decision for the
        # loop comes pre-made from the screen; should the cross-check
        # ever refuse it, :func:`reproject_loop` rebuilds the real value
        # on demand.
        if loop.label in self.elide and not region.enclosing_loops():
            perf.bump("screen.saved_units")
            summary = LoopSummary(
                loop=loop,
                info=info,
                body_value=body_value,
                loop_value=AccessValue.empty(),
                unit_name=out.unit_name,
                path_pred=path_pred,
                elided=True,
            )
            out.loops[loop] = summary
            return summary.loop_value
        loop_value = self._project_loop(body_value, loop, info)
        out.loops[loop] = LoopSummary(
            loop=loop,
            info=info,
            body_value=body_value,
            loop_value=loop_value,
            unit_name=out.unit_name,
            path_pred=path_pred,
        )
        return loop_value

    def _project_loop(
        self, body: AccessValue, loop: DoLoop, info: LoopInfo
    ) -> AccessValue:
        index = loop.var
        space = info.iteration_space()
        budget = self.opts.region_budget
        # variables a guard may not mention if it is to survive projection
        volatile = frozenset([index]) | body.scalar_writes

        r = body.r.project_may(index, space)
        w = body.w.project_may(index, space)

        m_alts = self._project_must_alts(body.m, index, space, volatile)
        e_alts = self._project_exposed_alts(
            body, m_alts, index, space, volatile, info.step
        )

        w_alts: List[GuardedSummary] = []
        for g in body.w_alts:
            split = split_guard_cases(
                g.pred, g.summary, body.w, volatile, self.opts.embedding
            )
            if split is None:
                continue
            pred, cases = split
            if pred.variables() & volatile:
                continue
            projected = SummarySet.empty()
            for s, _sys in cases:
                projected = projected.union(
                    s.project_may(index, space), self.opts.region_budget
                )
            w_alts.append(GuardedSummary(pred, projected))
        if not any(g.is_default() for g in w_alts):
            w_alts.append(GuardedSummary(TRUE, w))

        return AccessValue(
            r=r,
            w=w,
            m=_dedup_guarded(m_alts, self.opts.max_guarded, keep="max"),
            e=_dedup_guarded(e_alts, self.opts.max_guarded, keep="min"),
            w_alts=_dedup_guarded(w_alts, self.opts.max_guarded, keep="min"),
            scalar_writes=body.scalar_writes | frozenset([index]),
        )

    def _project_must_alts(
        self,
        alts: Tuple[GuardedSummary, ...],
        index: str,
        space: LinearSystem,
        volatile: frozenset,
    ) -> List[GuardedSummary]:
        """Project guarded must-writes across the iteration space.

        An index-dependent guard is *embedded* (its linear conjuncts are
        conjoined into the regions, making the projection range over
        exactly the iterations where the guard held).  A residual guard
        must be loop-invariant or the alternative is dropped.
        """
        out: List[GuardedSummary] = []
        for g in alts:
            pred, summary = g.pred, g.summary
            if self.opts.embedding and (pred.variables() & volatile):
                pred, summary = embed_into_summary(pred, summary)
            if pred.variables() & volatile:
                continue  # guard not interpretable at loop entry
            projected = summary.project_must(index, space)
            out.append(GuardedSummary(pred, projected))
        if not any(g.is_default() for g in out):
            out.append(GuardedSummary(TRUE, SummarySet.empty()))
        return out

    def _project_exposed_alts(
        self,
        body: AccessValue,
        loop_must: List[GuardedSummary],
        index: str,
        space: LinearSystem,
        volatile: frozenset,
        step,
    ) -> List[GuardedSummary]:
        """Exposed reads of the loop.

        For each usable exposed alternative ``(p_e, E(i))`` and each
        usable must alternative ``(p_m, M(i))``::

            E_loop = ⋃_i  E(i) − M_before(i)
            M_before(i) = ⋃_{i' executed before i} M(i')

        realized by renaming the must summary to a fresh iterator ``i'``,
        must-projecting it over the execution-earlier range (``i' < i``
        for positive steps, ``i' > i`` for negative — execution order,
        not index order), subtracting (with predicate extraction) and
        may-projecting the residue.  A non-constant step yields no prior
        iterations (sound: nothing is subtracted).
        """
        out: List[GuardedSummary] = []
        prior = self.fresh.fresh(f"{index}_prior")
        if step is not None and step < 0:
            order = Constraint.gt(
                AffineExpr.var(prior), AffineExpr.var(index)
            )
        else:
            order = Constraint.lt(
                AffineExpr.var(prior), AffineExpr.var(index)
            )
        prior_space = space.rename({index: prior}) & LinearSystem([order])
        if step is None or abs(step) != 1:
            # a strided loop's prior iterations are a strided subset of
            # the index range; subtracting the hull would fabricate
            # coverage, so no prior writes are claimed
            prior_space = LinearSystem.empty()
        e_default = body.exposed_default()
        for ge in body.e:
            split = split_guard_cases(
                ge.pred, ge.summary, e_default, volatile, self.opts.embedding
            )
            if split is None:
                continue
            e_pred, e_cases = split
            if e_pred.variables() & volatile:
                continue
            for gm in body.m:
                # must-writes may be embedded without complement cases:
                # restricting to guard-holding iterations only shrinks them
                m_pred, m_sum = gm.pred, gm.summary
                if self.opts.embedding and (m_pred.variables() & volatile):
                    m_pred, m_sum = embed_into_summary(m_pred, m_sum)
                if m_pred.variables() & volatile:
                    continue
                combined = p_and(e_pred, m_pred)
                if combined.is_false() or is_unsat(combined):
                    continue  # prune before the expensive subtraction
                    # (an unsat guard would be dedup-dropped afterwards)
                m_before = m_sum.rename_vars({index: prior}).project_must(
                    prior, prior_space
                )
                # combine the iteration-covering exposure cases: the loop
                # exposure is bounded by the union of per-case residues,
                # and is empty under the conjunction of per-case breaking
                # conditions
                union_residue = SummarySet.empty()
                all_break: Predicate = TRUE
                have_break = True
                for e_sum, _sys in e_cases:
                    alts = pred_subtract(e_sum, m_before, self.opts)
                    default_diff = next(
                        s for p, s in alts if p.is_true()
                    )
                    union_residue = union_residue.union(
                        default_diff.project_may(index, space),
                        self.opts.region_budget,
                    )
                    case_break = next(
                        (
                            p
                            for p, s in alts
                            if not p.is_true()
                            and s.is_empty()
                            and not (p.variables() & volatile)
                        ),
                        None,
                    )
                    if default_diff.is_empty():
                        continue  # this case contributes nothing anyway
                    if case_break is None:
                        have_break = False
                    else:
                        all_break = p_and(all_break, case_break)
                base_pred = p_and(e_pred, m_pred)
                if base_pred.is_false():
                    continue
                out.append(GuardedSummary(base_pred, union_residue))
                if (
                    have_break
                    and not all_break.is_true()
                    and not union_residue.is_empty()
                ):
                    pred = p_and(base_pred, all_break)
                    if not pred.is_false():
                        out.append(GuardedSummary(pred, SummarySet.empty()))
        if not any(g.is_default() for g in out):
            # sound fallback: every read may be exposed
            out.append(
                GuardedSummary(TRUE, body.r.project_may(index, space))
            )
        return out


def _summary_payload(summary: UnitSummary):
    """The cacheable projection of a :class:`UnitSummary`.

    Only interned symbolic values go to disk — AST and region objects
    stay out (their node ids are program-wide, so they could not be
    reused by another parse anyway).  Loop rows keep the walker's
    post-order so a rebound summary reports loops in the same order.
    """
    loop_rows = [
        # ``None`` marks an elided (never computed) projection; such
        # payloads only cross the process-executor boundary — elided
        # summaries never reach the cache
        (ls.label, ls.body_value, None if ls.elided else ls.loop_value, ls.path_pred)
        for ls in summary.loops.values()
    ]
    return (summary.proc_value, loop_rows)


def reproject_loop(loop_summary: LoopSummary, opts) -> AccessValue:
    """Recompute an elided loop's iteration-space projection on demand.

    A pure function of the (real) body value, loop info and options —
    the walker's fresh-name counter state is the only difference from
    the inline projection, and fresh names never reach any reported
    result (pinned by ``tests/ir/test_scalarprop_engine.py``'s
    fresh-name perturbation test).
    """
    return _UnitWalker._bare(opts)._project_loop(
        loop_summary.body_value, loop_summary.loop, loop_summary.info
    )


def _drop_arrays_from_value(value: AccessValue, arrays: List[str]) -> AccessValue:
    if not arrays:
        return value
    return AccessValue(
        r=value.r.drop_arrays(arrays),
        w=value.w.drop_arrays(arrays),
        m=tuple(
            GuardedSummary(g.pred, g.summary.drop_arrays(arrays))
            for g in value.m
        ),
        e=tuple(
            GuardedSummary(g.pred, g.summary.drop_arrays(arrays))
            for g in value.e
        ),
        w_alts=tuple(
            GuardedSummary(g.pred, g.summary.drop_arrays(arrays))
            for g in value.w_alts
        ),
        scalar_writes=value.scalar_writes,
    )
