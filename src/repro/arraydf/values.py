"""Predicated data-flow values and their composition operations.

An :class:`AccessValue` summarizes one program region's array accesses:

``r`` : :class:`SummarySet`
    may-read — over-approximation, unguarded (a guard would only ever be
    weakened to TRUE for soundness, so we keep TRUE throughout);
``w`` : :class:`SummarySet`
    may-write — over-approximation, unguarded, used by the dependence
    tests where *missing* a write would be unsound;
``w_alts`` : tuple of :class:`GuardedSummary`
    guarded may-write refinements: «if the guard holds at region entry,
    the writes are *contained in* the summary».  The unguarded ``w``
    always appears as the TRUE default.  These power predicated
    independence proofs (Figure 1(a) of the paper);
``m`` : tuple of :class:`GuardedSummary`
    must-write alternatives: «if the guard holds at region entry, the
    region definitely writes (at least) the summary».  Multiple guarded
    alternatives realize the paper's ⟨predicate, value⟩ pairs;
``e`` : tuple of :class:`GuardedSummary`
    exposed-read alternatives: «if the guard holds at region entry, the
    upward-exposed reads are *contained in* the summary».  Always ends
    with an unguarded (TRUE) default.

``scalar_writes`` records which scalars the region may write — guards of
a following region that mention them cannot be hoisted across this one
and are weakened (PredUnion/PredSubtract's modified-variable rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.predicates.formula import (
    Predicate,
    TRUE,
    p_and,
    p_not,
)
from repro.predicates.simplify import equivalent, implies, is_unsat
from repro.regions.summary import SummarySet


@dataclass(frozen=True)
class GuardedSummary:
    """One ⟨predicate, summary⟩ pair."""

    pred: Predicate
    summary: SummarySet

    def is_default(self) -> bool:
        return self.pred.is_true()


def _guard_ok(pred: Predicate, clobbered: FrozenSet[str]) -> bool:
    """May *pred* be interpreted at an earlier program point, given the
    set of variables written in between?"""
    return not (pred.variables() & clobbered)


#: memoized SummarySet.covers — containment tests repeat heavily across
#: dedup calls (cleared by perf.reset_all_caches like every oracle table)
_COVERS = perf.memo_table("pred.oracle.covers", cap=32768)


def _covers(a: SummarySet, b: SummarySet) -> bool:
    """``b ⊆ a``, memoized while the predicate oracle is enabled."""
    if a is b:
        return True
    if not perf.pred_oracle_enabled():
        return a.covers(b)
    key = (a, b)
    hit = _COVERS.data.get(key, perf.MISS)
    if hit is not perf.MISS:
        _COVERS.hits += 1
        return hit
    _COVERS.misses += 1
    result = a.covers(b)
    _COVERS.data[key] = result
    return result


def _summary_strength(s: SummarySet) -> Tuple[int, int]:
    """Deterministic size proxy: (region count, -total constraint count).

    Fewer regions and, among equal counts, more constraints ≈ a tighter
    (stronger) over-approximation.
    """
    nconstraints = 0
    for r in s.all_regions():
        nconstraints += len(r.system.constraints)
    return (s.region_count(), -nconstraints)


def _rank_key(g: GuardedSummary, keep: str):
    """Canonical strength ordering for the capped kept set.

    Strongest first: for over-approximating lists (``min``) smaller
    summaries rank earlier, for must-write lists (``max``) larger ones.
    The textual tail makes the order total, so the kept set depends only
    on the *set* of entries, never on input order.
    """
    size = _summary_strength(g.summary)
    if keep == "max":
        size = (-size[0], -size[1])
    return (size, str(g.pred), str(g.summary))


def _equiv_guards(p: Predicate, q: Predicate) -> bool:
    if p is q or p == q:
        return True
    # equivalent satisfiable, non-trivial guards share their variable
    # set in all but degenerate cases; the cheap prefilter bounds the
    # oracle work (missing a merge is only a lost optimization)
    if p.variables() != q.variables():
        return False
    return equivalent(p, q)


def _merge_summaries(a: SummarySet, b: SummarySet, keep: str) -> SummarySet:
    """Combine the summaries of two provably-equivalent guards."""
    if keep == "min":  # both are upper bounds: keep the tighter
        if _covers(a, b):
            return b
        if _covers(b, a):
            return a
        return a.intersect_pairwise(b)
    # both are must-write lower bounds: keep the larger
    if _covers(a, b):
        return a
    if _covers(b, a):
        return b
    return a.union(b)


def _dominated(g: GuardedSummary, k: GuardedSummary, keep: str) -> bool:
    """Is *g* redundant given the kept entry *k*?

    Yes when *k*'s guard is weaker-or-equal (``g.pred → k.pred``) and
    *k*'s summary already carries at least as much information: for
    over-approximating lists (``min``) ``k.summary ⊆ g.summary``, for
    must-writes (``max``) ``k.summary ⊇ g.summary``.
    """
    if not (k.pred.variables() <= g.pred.variables()):
        return False  # implication cannot be proven structurally relevant
    if keep == "min":
        if not _covers(g.summary, k.summary):
            return False
    else:
        if not _covers(k.summary, g.summary):
            return False
    return implies(g.pred, k.pred)


def _dedup_guarded(
    items: Iterable[GuardedSummary], cap: int, keep: str = "first"
) -> Tuple[GuardedSummary, ...]:
    """Semantic compaction of a guarded list; cap the result.

    Drops unsatisfiable guards and syntactic duplicates, then — for the
    directed modes — merges entries whose guards are provably equivalent
    (intersecting summaries for ``min`` lists, unioning for ``max``) and
    drops entries dominated by an already-kept one (weaker-or-equal
    guard *and* covered summary).  The cap keeps the strongest entries
    under a canonical ranking (:func:`_rank_key`), so the kept set is
    independent of input order.

    The TRUE default is always kept and placed last.  When several TRUE
    entries compete, *keep* selects the winner: ``"min"`` prefers the
    summary covered by the incumbent (tightest over-approximation, for
    exposed/write bounds), ``"max"`` the covering one (largest must-
    write), ``"first"`` keeps the first seen (legacy mode: default
    selection is order-dependent and no semantic merging is applied,
    since the list's approximation direction is unknown).
    """
    default: Optional[GuardedSummary] = None
    entries: List[GuardedSummary] = []
    seen = set()
    for g in items:
        if g.pred.is_false() or is_unsat(g.pred):
            continue
        if g.pred.is_true():
            if default is None:
                default = g
            elif keep == "min" and _covers(default.summary, g.summary):
                default = g
            elif keep == "max" and _covers(g.summary, default.summary):
                default = g
            continue
        key = (g.pred, g.summary)
        if key in seen:
            continue
        seen.add(key)
        entries.append(g)
    entries.sort(key=lambda g: _rank_key(g, keep))
    limit = max(0, cap - (1 if default is not None else 0))
    kept: List[GuardedSummary] = []
    semantic = keep in ("min", "max")
    for g in entries:
        if len(kept) >= limit:
            break
        placed = False
        if semantic:
            for j, k in enumerate(kept):
                if _equiv_guards(k.pred, g.pred):
                    kept[j] = GuardedSummary(
                        k.pred, _merge_summaries(k.summary, g.summary, keep)
                    )
                    placed = True
                    break
                if _dominated(g, k, keep):
                    placed = True
                    break
        if not placed:
            kept.append(g)
    if default is not None:
        kept.append(default)
    return tuple(kept)


@dataclass(frozen=True)
class AccessValue:
    """The data-flow value of one program region."""

    r: SummarySet
    w: SummarySet
    m: Tuple[GuardedSummary, ...]
    e: Tuple[GuardedSummary, ...]
    w_alts: Tuple[GuardedSummary, ...] = ()
    scalar_writes: FrozenSet[str] = frozenset()

    def __post_init__(self):
        if not self.w_alts:
            object.__setattr__(
                self, "w_alts", (GuardedSummary(TRUE, self.w),)
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "AccessValue":
        return _EMPTY

    @staticmethod
    def leaf(
        reads: SummarySet,
        writes: SummarySet,
        scalar_writes: FrozenSet[str] = frozenset(),
    ) -> "AccessValue":
        """Value of a single statement: reads happen before writes, so
        every read is exposed; the write is unconditional."""
        return AccessValue(
            r=reads,
            w=writes,
            m=(GuardedSummary(TRUE, writes),),
            e=(GuardedSummary(TRUE, reads),),
            scalar_writes=scalar_writes,
        )

    # ------------------------------------------------------------------
    # defaults
    # ------------------------------------------------------------------
    def must_default(self) -> SummarySet:
        """The unguarded must-write summary (∅ if no TRUE alternative)."""
        for g in self.m:
            if g.is_default():
                return g.summary
        return SummarySet.empty()

    def exposed_default(self) -> SummarySet:
        """The unguarded exposed-read over-approximation."""
        for g in self.e:
            if g.is_default():
                return g.summary
        # e must always carry a default; fall back to r for safety
        return self.r

    def guard_variables(self) -> FrozenSet[str]:
        vs: set = set()
        for g in self.m + self.e:
            vs |= g.pred.variables()
        return frozenset(vs)

    def clobbered_names(self) -> FrozenSet[str]:
        """Names whose value this region may change (scalars + arrays)."""
        return self.scalar_writes | frozenset(self.w.arrays())


_EMPTY = AccessValue(
    r=SummarySet.empty(),
    w=SummarySet.empty(),
    m=(GuardedSummary(TRUE, SummarySet.empty()),),
    e=(GuardedSummary(TRUE, SummarySet.empty()),),
)


# ----------------------------------------------------------------------
# sequential composition
# ----------------------------------------------------------------------


def seq_compose(
    v1: AccessValue, v2: AccessValue, opts: AnalysisOptions
) -> AccessValue:
    """Value of ``v1 ; v2`` (both always execute, in order).

    ``R = R1 ∪ R2``;  ``W = W1 ∪ W2``;
    ``M = M1 ∪ M2`` per guarded pair (guards of v2 must survive v1's
    writes); ``E = E1 ∪ (E2 − M1)`` with the predicated subtraction
    supplied by :mod:`repro.arraydf.extraction`.
    """
    from repro.arraydf.extraction import pred_subtract

    budget = opts.region_budget
    clobbered = v1.clobbered_names()

    r = v1.r.union(v2.r, budget)
    w = v1.w.union(v2.w, budget)

    # guarded may-writes
    w_alts: List[GuardedSummary] = []
    for g1 in v1.w_alts:
        for g2 in v2.w_alts:
            if not _guard_ok(g2.pred, clobbered):
                # under g1's guard the writes stay within S1 ∪ (all of v2)
                w_alts.append(
                    GuardedSummary(g1.pred, g1.summary.union(v2.w, budget))
                )
                continue
            w_alts.append(
                GuardedSummary(
                    p_and(g1.pred, g2.pred),
                    g1.summary.union(g2.summary, budget),
                )
            )
    if not any(g.is_default() for g in w_alts):
        w_alts.append(GuardedSummary(TRUE, w))

    # must-writes
    m_alts: List[GuardedSummary] = []
    for g1 in v1.m:
        for g2 in v2.m:
            if not _guard_ok(g2.pred, clobbered):
                # g2 cannot be hoisted to v1's entry: weaken to ∅
                m_alts.append(GuardedSummary(g1.pred, g1.summary))
                continue
            pred = p_and(g1.pred, g2.pred)
            m_alts.append(
                GuardedSummary(pred, g1.summary.union(g2.summary, budget))
            )
    if not any(g.is_default() for g in m_alts):
        m_alts.append(GuardedSummary(TRUE, v1.must_default()))

    # exposed reads: E1 ∪ (E2 − M1)
    e_alts: List[GuardedSummary] = []
    for g1e in v1.e:
        for g1m in v1.m:
            for g2e in v2.e:
                if not _guard_ok(g2e.pred, clobbered):
                    continue
                base_pred = p_and(g1e.pred, g1m.pred, g2e.pred)
                # an unsat base guard would be dropped by the dedup pass
                # anyway; refuting it now (memoized) skips the expensive
                # predicated subtraction
                if base_pred.is_false() or is_unsat(base_pred):
                    continue
                for sub_pred, subtracted in pred_subtract(
                    g2e.summary, g1m.summary, opts
                ):
                    pred = p_and(base_pred, sub_pred)
                    if pred.is_false():
                        continue
                    e_alts.append(
                        GuardedSummary(
                            pred, g1e.summary.union(subtracted, budget)
                        )
                    )
    # unconditional default: E1_def ∪ (E2_def − M1_def)
    default_e = v1.exposed_default().union(
        v2.exposed_default().subtract(v1.must_default()), budget
    )
    e_alts.append(GuardedSummary(TRUE, default_e))

    return AccessValue(
        r=r,
        w=w,
        m=_dedup_guarded(m_alts, opts.max_guarded, keep="max"),
        e=_dedup_guarded(e_alts, opts.max_guarded, keep="min"),
        w_alts=_dedup_guarded(w_alts, opts.max_guarded, keep="min"),
        scalar_writes=v1.scalar_writes | v2.scalar_writes,
    )


def seq_compose_all(
    values: Iterable[AccessValue], opts: AnalysisOptions
) -> AccessValue:
    acc = AccessValue.empty()
    for v in values:
        acc = seq_compose(acc, v, opts)
    return acc


# ----------------------------------------------------------------------
# control-flow join (if/else)
# ----------------------------------------------------------------------


def branch_join(
    cond: Predicate,
    v_then: AccessValue,
    v_else: AccessValue,
    opts: AnalysisOptions,
) -> AccessValue:
    """PredUnion at a structured conditional.

    May-information unions the branches.  With predicates enabled, the
    must/exposed alternatives of each branch are guarded by the branch
    condition (⟨p, v_then⟩ ⊎ ⟨¬p, v_else⟩), and the classic unguarded
    meet (``M_then ∩ M_else``, ``E_then ∪ E_else``) is kept as the
    default.
    """
    budget = opts.region_budget
    r = v_then.r.union(v_else.r, budget)
    w = v_then.w.union(v_else.w, budget)

    default_m = v_then.must_default().intersect_pairwise(v_else.must_default())
    default_e = v_then.exposed_default().union(v_else.exposed_default(), budget)

    m_alts: List[GuardedSummary] = []
    e_alts: List[GuardedSummary] = []
    w_alts: List[GuardedSummary] = []
    if opts.predicates and not cond.is_true() and not cond.is_false():
        ncond = p_not(cond)
        for g in v_then.m:
            m_alts.append(GuardedSummary(p_and(cond, g.pred), g.summary))
        for g in v_else.m:
            m_alts.append(GuardedSummary(p_and(ncond, g.pred), g.summary))
        for g in v_then.e:
            e_alts.append(GuardedSummary(p_and(cond, g.pred), g.summary))
        for g in v_else.e:
            e_alts.append(GuardedSummary(p_and(ncond, g.pred), g.summary))
        for g in v_then.w_alts:
            w_alts.append(GuardedSummary(p_and(cond, g.pred), g.summary))
        for g in v_else.w_alts:
            w_alts.append(GuardedSummary(p_and(ncond, g.pred), g.summary))
    m_alts.append(GuardedSummary(TRUE, default_m))
    e_alts.append(GuardedSummary(TRUE, default_e))
    w_alts.append(GuardedSummary(TRUE, w))

    return AccessValue(
        r=r,
        w=w,
        m=_dedup_guarded(m_alts, opts.max_guarded, keep="max"),
        e=_dedup_guarded(e_alts, opts.max_guarded, keep="min"),
        w_alts=_dedup_guarded(w_alts, opts.max_guarded, keep="min"),
        scalar_writes=v_then.scalar_writes | v_else.scalar_writes,
    )


# ----------------------------------------------------------------------
# guarded-alternative merge (call sites, reshape results)
# ----------------------------------------------------------------------


def guarded_value(
    alternatives: List[Tuple[Predicate, SummarySet]],
    may: SummarySet,
    kind: str,
    opts: AnalysisOptions,
) -> Tuple[GuardedSummary, ...]:
    """Package reshape alternatives into a guarded list.

    *kind* is ``"must"`` (default ∅ unless provided) or ``"exposed"``
    (default = *may*).
    """
    out = [GuardedSummary(p, s) for p, s in alternatives]
    if not any(g.is_default() for g in out):
        default = SummarySet.empty() if kind == "must" else may
        out.append(GuardedSummary(TRUE, default))
    if not opts.predicates:
        out = [g for g in out if g.is_default()]
    return _dedup_guarded(out, opts.max_guarded)
