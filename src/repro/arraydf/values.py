"""Predicated data-flow values and their composition operations.

An :class:`AccessValue` summarizes one program region's array accesses:

``r`` : :class:`SummarySet`
    may-read — over-approximation, unguarded (a guard would only ever be
    weakened to TRUE for soundness, so we keep TRUE throughout);
``w`` : :class:`SummarySet`
    may-write — over-approximation, unguarded, used by the dependence
    tests where *missing* a write would be unsound;
``w_alts`` : tuple of :class:`GuardedSummary`
    guarded may-write refinements: «if the guard holds at region entry,
    the writes are *contained in* the summary».  The unguarded ``w``
    always appears as the TRUE default.  These power predicated
    independence proofs (Figure 1(a) of the paper);
``m`` : tuple of :class:`GuardedSummary`
    must-write alternatives: «if the guard holds at region entry, the
    region definitely writes (at least) the summary».  Multiple guarded
    alternatives realize the paper's ⟨predicate, value⟩ pairs;
``e`` : tuple of :class:`GuardedSummary`
    exposed-read alternatives: «if the guard holds at region entry, the
    upward-exposed reads are *contained in* the summary».  Always ends
    with an unguarded (TRUE) default.

``scalar_writes`` records which scalars the region may write — guards of
a following region that mention them cannot be hoisted across this one
and are weakened (PredUnion/PredSubtract's modified-variable rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.arraydf.options import AnalysisOptions
from repro.predicates.formula import (
    Predicate,
    TRUE,
    p_and,
    p_not,
)
from repro.predicates.simplify import is_unsat
from repro.regions.summary import SummarySet


@dataclass(frozen=True)
class GuardedSummary:
    """One ⟨predicate, summary⟩ pair."""

    pred: Predicate
    summary: SummarySet

    def is_default(self) -> bool:
        return self.pred.is_true()


def _guard_ok(pred: Predicate, clobbered: FrozenSet[str]) -> bool:
    """May *pred* be interpreted at an earlier program point, given the
    set of variables written in between?"""
    return not (pred.variables() & clobbered)


def _dedup_guarded(
    items: Iterable[GuardedSummary], cap: int, keep: str = "first"
) -> Tuple[GuardedSummary, ...]:
    """Drop unsatisfiable guards and syntactic duplicates; cap the list.

    The TRUE default is always kept and placed last.  When several TRUE
    entries compete, *keep* selects the winner: ``"min"`` prefers the
    summary covered by the incumbent (tightest over-approximation, for
    exposed/write bounds), ``"max"`` the covering one (largest must-
    write), ``"first"`` keeps the first seen.
    """
    default: Optional[GuardedSummary] = None
    out: List[GuardedSummary] = []
    seen = set()
    for g in items:
        if g.pred.is_false() or is_unsat(g.pred):
            continue
        if g.pred.is_true():
            if default is None:
                default = g
            elif keep == "min" and default.summary.covers(g.summary):
                default = g
            elif keep == "max" and g.summary.covers(default.summary):
                default = g
            continue
        key = (g.pred, g.summary)
        if key in seen:
            continue
        seen.add(key)
        out.append(g)
    out = out[: cap - (1 if default is not None else 0)]
    if default is not None:
        out.append(default)
    return tuple(out)


@dataclass(frozen=True)
class AccessValue:
    """The data-flow value of one program region."""

    r: SummarySet
    w: SummarySet
    m: Tuple[GuardedSummary, ...]
    e: Tuple[GuardedSummary, ...]
    w_alts: Tuple[GuardedSummary, ...] = ()
    scalar_writes: FrozenSet[str] = frozenset()

    def __post_init__(self):
        if not self.w_alts:
            object.__setattr__(
                self, "w_alts", (GuardedSummary(TRUE, self.w),)
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "AccessValue":
        return _EMPTY

    @staticmethod
    def leaf(
        reads: SummarySet,
        writes: SummarySet,
        scalar_writes: FrozenSet[str] = frozenset(),
    ) -> "AccessValue":
        """Value of a single statement: reads happen before writes, so
        every read is exposed; the write is unconditional."""
        return AccessValue(
            r=reads,
            w=writes,
            m=(GuardedSummary(TRUE, writes),),
            e=(GuardedSummary(TRUE, reads),),
            scalar_writes=scalar_writes,
        )

    # ------------------------------------------------------------------
    # defaults
    # ------------------------------------------------------------------
    def must_default(self) -> SummarySet:
        """The unguarded must-write summary (∅ if no TRUE alternative)."""
        for g in self.m:
            if g.is_default():
                return g.summary
        return SummarySet.empty()

    def exposed_default(self) -> SummarySet:
        """The unguarded exposed-read over-approximation."""
        for g in self.e:
            if g.is_default():
                return g.summary
        # e must always carry a default; fall back to r for safety
        return self.r

    def guard_variables(self) -> FrozenSet[str]:
        vs: set = set()
        for g in self.m + self.e:
            vs |= g.pred.variables()
        return frozenset(vs)

    def clobbered_names(self) -> FrozenSet[str]:
        """Names whose value this region may change (scalars + arrays)."""
        return self.scalar_writes | frozenset(self.w.arrays())


_EMPTY = AccessValue(
    r=SummarySet.empty(),
    w=SummarySet.empty(),
    m=(GuardedSummary(TRUE, SummarySet.empty()),),
    e=(GuardedSummary(TRUE, SummarySet.empty()),),
)


# ----------------------------------------------------------------------
# sequential composition
# ----------------------------------------------------------------------


def seq_compose(
    v1: AccessValue, v2: AccessValue, opts: AnalysisOptions
) -> AccessValue:
    """Value of ``v1 ; v2`` (both always execute, in order).

    ``R = R1 ∪ R2``;  ``W = W1 ∪ W2``;
    ``M = M1 ∪ M2`` per guarded pair (guards of v2 must survive v1's
    writes); ``E = E1 ∪ (E2 − M1)`` with the predicated subtraction
    supplied by :mod:`repro.arraydf.extraction`.
    """
    from repro.arraydf.extraction import pred_subtract

    budget = opts.region_budget
    clobbered = v1.clobbered_names()

    r = v1.r.union(v2.r, budget)
    w = v1.w.union(v2.w, budget)

    # guarded may-writes
    w_alts: List[GuardedSummary] = []
    for g1 in v1.w_alts:
        for g2 in v2.w_alts:
            if not _guard_ok(g2.pred, clobbered):
                # under g1's guard the writes stay within S1 ∪ (all of v2)
                w_alts.append(
                    GuardedSummary(g1.pred, g1.summary.union(v2.w, budget))
                )
                continue
            w_alts.append(
                GuardedSummary(
                    p_and(g1.pred, g2.pred),
                    g1.summary.union(g2.summary, budget),
                )
            )
    if not any(g.is_default() for g in w_alts):
        w_alts.append(GuardedSummary(TRUE, w))

    # must-writes
    m_alts: List[GuardedSummary] = []
    for g1 in v1.m:
        for g2 in v2.m:
            if not _guard_ok(g2.pred, clobbered):
                # g2 cannot be hoisted to v1's entry: weaken to ∅
                m_alts.append(GuardedSummary(g1.pred, g1.summary))
                continue
            pred = p_and(g1.pred, g2.pred)
            m_alts.append(
                GuardedSummary(pred, g1.summary.union(g2.summary, budget))
            )
    if not any(g.is_default() for g in m_alts):
        m_alts.append(GuardedSummary(TRUE, v1.must_default()))

    # exposed reads: E1 ∪ (E2 − M1)
    e_alts: List[GuardedSummary] = []
    for g1e in v1.e:
        for g1m in v1.m:
            for g2e in v2.e:
                if not _guard_ok(g2e.pred, clobbered):
                    continue
                base_pred = p_and(g1e.pred, g1m.pred, g2e.pred)
                if base_pred.is_false():
                    continue
                for sub_pred, subtracted in pred_subtract(
                    g2e.summary, g1m.summary, opts
                ):
                    pred = p_and(base_pred, sub_pred)
                    if pred.is_false():
                        continue
                    e_alts.append(
                        GuardedSummary(
                            pred, g1e.summary.union(subtracted, budget)
                        )
                    )
    # unconditional default: E1_def ∪ (E2_def − M1_def)
    default_e = v1.exposed_default().union(
        v2.exposed_default().subtract(v1.must_default()), budget
    )
    e_alts.append(GuardedSummary(TRUE, default_e))

    return AccessValue(
        r=r,
        w=w,
        m=_dedup_guarded(m_alts, opts.max_guarded, keep="max"),
        e=_dedup_guarded(e_alts, opts.max_guarded, keep="min"),
        w_alts=_dedup_guarded(w_alts, opts.max_guarded, keep="min"),
        scalar_writes=v1.scalar_writes | v2.scalar_writes,
    )


def seq_compose_all(
    values: Iterable[AccessValue], opts: AnalysisOptions
) -> AccessValue:
    acc = AccessValue.empty()
    for v in values:
        acc = seq_compose(acc, v, opts)
    return acc


# ----------------------------------------------------------------------
# control-flow join (if/else)
# ----------------------------------------------------------------------


def branch_join(
    cond: Predicate,
    v_then: AccessValue,
    v_else: AccessValue,
    opts: AnalysisOptions,
) -> AccessValue:
    """PredUnion at a structured conditional.

    May-information unions the branches.  With predicates enabled, the
    must/exposed alternatives of each branch are guarded by the branch
    condition (⟨p, v_then⟩ ⊎ ⟨¬p, v_else⟩), and the classic unguarded
    meet (``M_then ∩ M_else``, ``E_then ∪ E_else``) is kept as the
    default.
    """
    budget = opts.region_budget
    r = v_then.r.union(v_else.r, budget)
    w = v_then.w.union(v_else.w, budget)

    default_m = v_then.must_default().intersect_pairwise(v_else.must_default())
    default_e = v_then.exposed_default().union(v_else.exposed_default(), budget)

    m_alts: List[GuardedSummary] = []
    e_alts: List[GuardedSummary] = []
    w_alts: List[GuardedSummary] = []
    if opts.predicates and not cond.is_true() and not cond.is_false():
        ncond = p_not(cond)
        for g in v_then.m:
            m_alts.append(GuardedSummary(p_and(cond, g.pred), g.summary))
        for g in v_else.m:
            m_alts.append(GuardedSummary(p_and(ncond, g.pred), g.summary))
        for g in v_then.e:
            e_alts.append(GuardedSummary(p_and(cond, g.pred), g.summary))
        for g in v_else.e:
            e_alts.append(GuardedSummary(p_and(ncond, g.pred), g.summary))
        for g in v_then.w_alts:
            w_alts.append(GuardedSummary(p_and(cond, g.pred), g.summary))
        for g in v_else.w_alts:
            w_alts.append(GuardedSummary(p_and(ncond, g.pred), g.summary))
    m_alts.append(GuardedSummary(TRUE, default_m))
    e_alts.append(GuardedSummary(TRUE, default_e))
    w_alts.append(GuardedSummary(TRUE, w))

    return AccessValue(
        r=r,
        w=w,
        m=_dedup_guarded(m_alts, opts.max_guarded, keep="max"),
        e=_dedup_guarded(e_alts, opts.max_guarded, keep="min"),
        w_alts=_dedup_guarded(w_alts, opts.max_guarded, keep="min"),
        scalar_writes=v_then.scalar_writes | v_else.scalar_writes,
    )


# ----------------------------------------------------------------------
# guarded-alternative merge (call sites, reshape results)
# ----------------------------------------------------------------------


def guarded_value(
    alternatives: List[Tuple[Predicate, SummarySet]],
    may: SummarySet,
    kind: str,
    opts: AnalysisOptions,
) -> Tuple[GuardedSummary, ...]:
    """Package reshape alternatives into a guarded list.

    *kind* is ``"must"`` (default ∅ unless provided) or ``"exposed"``
    (default = *may*).
    """
    out = [GuardedSummary(p, s) for p, s in alternatives]
    if not any(g.is_default() for g in out):
        default = SummarySet.empty() if kind == "must" else may
        out.append(GuardedSummary(TRUE, default))
    if not opts.predicates:
        out = [g for g in out if g.is_default()]
    return _dedup_guarded(out, opts.max_guarded)
