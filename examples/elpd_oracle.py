"""The ELPD dynamic oracle: the same loop, three verdicts.

ELPD instruments array accesses and classifies each loop per *input* —
its guarantees hold only for the tested run, which is exactly why the
paper counts "remaining inherently parallel loops" with it and why the
derived compile-time/run-time results must agree with it (the analysis
soundness tests in `tests/suites` check that).

Run:  python examples/elpd_oracle.py
"""

from repro.lang.parser import parse_program
from repro.runtime.elpd import run_oracle

SOURCE = """
program demo
  integer n, k
  real a(300), w(50), b(50, 50)
  read n, k

  ! verdict depends on the input value of k
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo

  ! privatizable on every input: w is rewritten before use each j
  do j = 1, 40
    do i = 1, 40
      w(i) = b(i, j) * 2.0
    enddo
    do i = 1, 40
      b(i, j) = w(i) + 1.0
    enddo
  enddo

  ! dependent on every input with n >= 2
  do i = 2, n
    a(i) = a(i - 1) * 0.5
  enddo
end
"""


def main() -> None:
    program = parse_program(SOURCE)
    for n, k, note in [
        (100, 3, "k inside (0, n): the offset loop carries flow"),
        (100, 150, "k >= n: write and read ranges are disjoint"),
        (100, 0, "k == 0: every iteration touches only its own element"),
    ]:
        report = run_oracle(parse_program(SOURCE), [n, k])
        print(f"--- input n={n}, k={k}  ({note})")
        for label in sorted(report.observations):
            obs = report.observations[label]
            detail = ""
            if obs.flow_arrays:
                detail = f"  flow through {', '.join(sorted(obs.flow_arrays))}"
            elif obs.conflict_arrays:
                detail = (
                    f"  conflicts on {', '.join(sorted(obs.conflict_arrays))}"
                )
            print(f"    {label:<12} {obs.classification}{detail}")
        print()


if __name__ == "__main__":
    main()
