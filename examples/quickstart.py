"""Quickstart: analyze a program and print the parallelization report.

Run:  python examples/quickstart.py
"""

from repro.arraydf.options import AnalysisOptions
from repro.codegen.report import format_report
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program

SOURCE = """
program quickstart
  integer n, k
  real a(200), b(200), w(200), c(200, 200)
  read n, k

  ! a plain parallel loop
  do i = 1, n
    b(i) = a(i) * 2.0
  enddo

  ! a genuine recurrence: stays serial
  do i = 2, n
    a(i) = a(i - 1) + b(i)
  enddo

  ! privatizable work array
  do j = 1, n
    do i = 1, n
      w(i) = c(i, j) + 1.0
    enddo
    do i = 1, n
      c(i, j) = w(i) * 0.5
    enddo
  enddo

  ! symbolic offset: parallel under a derived run-time test
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo
end
"""


def main() -> None:
    program = parse_program(SOURCE)

    print("=== base (SUIF-style) analysis ===")
    base = analyze_program(program, AnalysisOptions.base())
    print(format_report(base))

    print()
    print("=== predicated array data-flow analysis ===")
    predicated = analyze_program(program, AnalysisOptions.predicated())
    print(format_report(predicated))

    print()
    wins = [
        l
        for l in predicated.loops
        if l.is_parallelized
        and not base.by_label()[l.label].is_parallelized
    ]
    print(f"loops gained by the predicated analysis: "
          f"{', '.join(l.label for l in wins)}")
    for l in wins:
        if l.runtime_test:
            print(f"  {l.label}: guarded by run-time test  {l.runtime_test}")


if __name__ == "__main__":
    main()
