"""The paper's Figure 1: four loops, four mechanisms.

Shows, for each motivating example, what the base analysis concludes,
what the predicated analysis concludes, and — when the loop needs one —
the derived run-time test.

Run:  python examples/fig1_motivating.py
"""

from repro.experiments.fig1_examples import ABLATION_FOR, EXAMPLES, run


def main() -> None:
    result = run()
    for name, (source, claim) in EXAMPLES.items():
        ablation_name, _ = ABLATION_FOR[name]
        statuses = result.statuses[name]
        print(f"--- {name}: {claim} ---")
        print(source.strip())
        print()
        print(f"  base analysis:        {statuses['base']}")
        print(f"  predicated analysis:  {statuses['predicated']}")
        print(f"  with {ablation_name}: {statuses['ablated']}")
        if name in result.runtime_tests:
            print(f"  derived run-time test: {result.runtime_tests[name]}")
        print()


if __name__ == "__main__":
    main()
