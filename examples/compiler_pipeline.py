"""The full compiler pipeline on one benchmark program.

analysis → parallelization decisions → two-version code generation →
semantic check under the interpreter → ELPD dynamic verification →
multiprocessor speedup simulation.

Run:  python examples/compiler_pipeline.py [program-name]
"""

import sys

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.codegen.report import format_report
from repro.codegen.twoversion import transform_program
from repro.lang.prettyprint import pretty
from repro.machine.costmodel import MachineModel
from repro.machine.speedup import speedup_comparison
from repro.partests.driver import analyze_program
from repro.runtime.elpd import run_oracle
from repro.runtime.interp import run_program
from repro.suites import get_program


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "su2cor"
    bench = get_program(name)
    print(f"### {bench.name} ({bench.suite}) — {bench.notes}\n")

    # 1. analyze
    result = analyze_program(bench.fresh_program(), AnalysisOptions.predicated())
    print(format_report(result))
    print()

    # 2. generate two-version code where run-time tests were derived
    plan = build_plan(result)
    transformed = transform_program(bench.fresh_program(), plan)
    if plan.two_version_count():
        print(f"two-version loops generated: {plan.two_version_count()}")
        print("transformed main unit:")
        print(pretty(transformed).split("\n\nsubroutine")[0])
        print()

    # 3. semantics: original and transformed programs agree
    ref = run_program(bench.fresh_program(), bench.inputs)
    got = run_program(transformed, bench.inputs)
    assert got.main_arrays == ref.main_arrays, "two-version transform broke semantics!"
    print("semantic check: transformed program matches the original  ✓")

    # 4. ELPD oracle agrees with every compile-time-parallel decision
    oracle = run_oracle(bench.fresh_program(), bench.inputs)
    for l in result.loops:
        if l.status in ("parallel", "parallel_private"):
            obs = oracle.observations[l.label]
            assert obs.classification != "dependent", l.label
    print("dynamic check: no parallelized loop is ELPD-dependent       ✓")
    print()

    # 5. speedups
    curves = speedup_comparison(bench.fresh_program(), bench.inputs)
    model = MachineModel()
    print("simulated speedups (P = 1, 2, 4, 8):")
    for tag, curve in curves.items():
        pts = "  ".join(f"{p}:{curve.at(p):.2f}x" for p in (1, 2, 4, 8))
        print(f"  {tag:<12} {pts}")


if __name__ == "__main__":
    main()
