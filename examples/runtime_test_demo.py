"""Run-time test in action: the same two-version loop on three inputs.

The compiler derives a predicate for ``a(i+k) = a(i) + 1`` under which
the loop is safe to run in parallel; at run time the generated guard
selects the parallel or the serial version.  This demo executes the
two-version program on inputs that exercise both paths and shows the
interpreter's record of which version ran.

Run:  python examples/runtime_test_demo.py
"""

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.runtime.interp import Interpreter

SOURCE = """
program demo
  integer n, k
  real a(400)
  read n, k
  do i = 1, n
    a(i) = i * 1.0
  enddo
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo
  print a(1), a(n)
end
"""


def main() -> None:
    program = parse_program(SOURCE)
    result = analyze_program(program, AnalysisOptions.predicated())
    tested = next(l for l in result.loops if l.status == "runtime")
    print(f"loop {tested.label} is parallel under the derived test:")
    print(f"    {tested.runtime_test}")
    print()

    plan = build_plan(result)
    for n, k, expectation in [
        (100, 0, "aligned: test passes, parallel version runs"),
        (100, 7, "0 < k < n: dependent, serial version runs"),
        (100, 150, "k >= n: disjoint, parallel version runs"),
    ]:
        interp = Interpreter(program, [n, k], plan=plan)
        res = interp.run()
        event = next(
            e for e in res.loop_events if e.nid == tested.loop.nid
        )
        version = "parallel" if event.ran_parallel_version else "serial"
        print(
            f"n={n:<4} k={k:<4} → {version:<8} version "
            f"({expectation}); output: {res.outputs[0]}"
        )


if __name__ == "__main__":
    main()
